package triad

import (
	"fmt"
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func testParams() workload.Params {
	return workload.Params{
		Seed:       1021,
		TriadLo:    3 * units.KiB,
		TriadHi:    768 * units.MiB,
		AssumedLLC: 32 * units.MiB,
	}
}

func TestPlanSimulatedShape(t *testing.T) {
	sys, err := hw.Get("2650v4") // dual socket
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", plan.Warnings)
	}
	// One sweep per (socket config x {L3, DRAM}).
	want := 2 * len(sys.SocketConfigs())
	if len(plan.Sweeps) != want {
		t.Fatalf("sweeps = %d, want %d", len(plan.Sweeps), want)
	}
	regions := map[string]int{}
	for _, pl := range plan.Sweeps {
		if pl.Point.Compute {
			t.Fatalf("TRIAD planned a compute point: %+v", pl.Point)
		}
		regions[pl.Point.Region]++
		theo := pl.Point.TheoreticalBandwidth
		if (pl.Point.Region == "DRAM") != (theo != 0) {
			t.Fatalf("theoretical bandwidth on %s point: %v", pl.Point.Region, theo)
		}
		if len(pl.Spec.Cases) == 0 {
			t.Fatalf("sweep %s has no cases", pl.Spec.Name)
		}
	}
	if regions["L3"] != 2 || regions["DRAM"] != 2 {
		t.Fatalf("regions: %v", regions)
	}
}

func TestPlanEmptyRegionWarns(t *testing.T) {
	sys, err := hw.Get("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	// Cap the working set below 4x L3 on every socket config: the DRAM
	// regions cannot be populated and must warn, not vanish.
	p.TriadHi = 32 * units.MiB
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Every socket config's DRAM region is empty; each must warn (the
	// dual-socket L3 region empties too — its L2 capacity alone exceeds
	// the cap — which is additional warning, not noise).
	dram := 0
	for _, w := range plan.Warnings {
		if !strings.Contains(w, "missing") {
			t.Fatalf("warning does not explain the missing ceiling: %q", w)
		}
		if strings.Contains(w, "DRAM") {
			dram++
		}
	}
	if dram != len(sys.SocketConfigs()) {
		t.Fatalf("DRAM warnings = %d in %v, want one per socket config", dram, plan.Warnings)
	}
	for _, pl := range plan.Sweeps {
		if pl.Point.Region == "DRAM" {
			t.Fatalf("empty DRAM region still planned: %+v", pl)
		}
	}
}

// TestPlanLevelsShape pins the per-level plan: one sweep per requested
// residency region per socket configuration, presented fastest-first,
// each chained (SeedFrom) to the nearest slower planned region of its
// socket configuration.
func TestPlanLevelsShape(t *testing.T) {
	sys, err := hw.Get("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.TriadLevels = []string{"DRAM", "L1", "L3", "L2"} // any order in, canonical order out
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", plan.Warnings)
	}
	want := 4 * len(sys.SocketConfigs())
	if len(plan.Sweeps) != want {
		t.Fatalf("sweeps = %d, want %d", len(plan.Sweeps), want)
	}
	levels := []string{"L1", "L2", "L3", "DRAM"}
	for c, sockets := range sys.SocketConfigs() {
		for i, lv := range levels {
			pl := plan.Sweeps[c*4+i]
			if pl.Point.Region != lv || pl.Point.Sockets != sockets {
				t.Fatalf("sweep %d: region %s sockets %d, want %s/%d",
					c*4+i, pl.Point.Region, pl.Point.Sockets, lv, sockets)
			}
			wantID := fmt.Sprintf("triad/%s/%ds", lv, sockets)
			if pl.ID != wantID {
				t.Fatalf("sweep %d: ID %q, want %q", c*4+i, pl.ID, wantID)
			}
			// Chain: DRAM is the root; every faster level seeds from the
			// next slower one.
			wantFrom := ""
			if lv != "DRAM" {
				wantFrom = fmt.Sprintf("triad/%s/%ds", levels[i+1], sockets)
			}
			if pl.SeedFrom != wantFrom {
				t.Fatalf("sweep %s: SeedFrom %q, want %q", pl.ID, pl.SeedFrom, wantFrom)
			}
			if len(pl.Spec.Cases) == 0 {
				t.Fatalf("sweep %s has no cases", pl.ID)
			}
		}
	}
	if errs := sweep.PlanViolations(plan.Nodes()); len(errs) != 0 {
		t.Fatalf("per-level plan graph invalid: %v", errs)
	}
}

// TestPlanLevelsChainSkipsEmptyRegion: a region that filters empty drops
// out of its chain, and the next faster level seeds from the nearest
// planned slower one instead.
func TestPlanLevelsChainSkipsEmptyRegion(t *testing.T) {
	sys, err := hw.Get("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.TriadLevels = []string{"L1", "L3", "DRAM"} // L2 not requested
	p.TriadHi = 32 * units.MiB                   // DRAM regions filter empty
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, p)
	if err != nil {
		t.Fatal(err)
	}
	var l3From, l1From string
	for _, pl := range plan.Sweeps {
		if pl.Point.Sockets != 1 {
			continue
		}
		switch pl.Point.Region {
		case "L3":
			l3From = pl.SeedFrom
		case "L1":
			l1From = pl.SeedFrom
		}
	}
	if l3From != "" {
		t.Fatalf("L3 must be its chain's root once DRAM filtered empty, seeds from %q", l3From)
	}
	if l1From != "triad/L3/1s" {
		t.Fatalf("L1 must seed from L3 when L2 is not planned, seeds from %q", l1From)
	}
	if errs := sweep.PlanViolations(plan.Nodes()); len(errs) != 0 {
		t.Fatalf("plan graph invalid after dropped region: %v", errs)
	}
}

func TestPlanUnknownLevel(t *testing.T) {
	sys, err := hw.Get("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.TriadLevels = []string{"L3", "L9"}
	if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, p); err == nil {
		t.Fatal("unknown residency level must error")
	}
	p.TriadLevels = []string{"L3", "L3"}
	if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, p); err == nil {
		t.Fatal("duplicate residency level must error")
	}
}

func TestPlanNativeShape(t *testing.T) {
	eng := bench.NewNativeEngine(1)
	p := testParams()
	p.TriadHi = 256 * units.MiB
	plan, err := Workload{}.Plan(workload.Target{Native: eng}, p)
	if err != nil {
		t.Fatal(err)
	}
	regions := map[string]string{}
	for _, pl := range plan.Sweeps {
		regions[pl.Point.Region] = pl.SeedFrom
		if pl.Spec.Clock != eng.Clock {
			t.Fatalf("native sweep %s must share the host clock", pl.Spec.Name)
		}
		if pl.Point.TheoreticalBandwidth != 0 {
			t.Fatalf("native point has a theoretical peak: %+v", pl.Point)
		}
	}
	if _, ok := regions["cache"]; !ok {
		t.Fatalf("native regions: %v", regions)
	}
	if _, ok := regions["DRAM"]; !ok {
		t.Fatalf("native regions: %v", regions)
	}
	// The cache sweep (faster) chains off the DRAM winner; DRAM is the root.
	if regions["DRAM"] != "" || regions["cache"] != "triad/DRAM/native" {
		t.Fatalf("native chain edges: %v", regions)
	}
	if errs := sweep.PlanViolations(plan.Nodes()); len(errs) != 0 {
		t.Fatalf("native plan graph invalid: %v", errs)
	}
}

func TestPlanInvertedBounds(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.TriadLo, p.TriadHi = p.TriadHi, p.TriadLo
	if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, p); err == nil {
		t.Fatal("inverted bounds must error")
	}
}
