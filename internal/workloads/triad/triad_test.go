package triad

import (
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func testParams() workload.Params {
	return workload.Params{
		Seed:       1021,
		TriadLo:    3 * units.KiB,
		TriadHi:    768 * units.MiB,
		AssumedLLC: 32 * units.MiB,
	}
}

func TestPlanSimulatedShape(t *testing.T) {
	sys, err := hw.Get("2650v4") // dual socket
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", plan.Warnings)
	}
	// One sweep per (socket config x {L3, DRAM}).
	want := 2 * len(sys.SocketConfigs())
	if len(plan.Sweeps) != want {
		t.Fatalf("sweeps = %d, want %d", len(plan.Sweeps), want)
	}
	regions := map[string]int{}
	for _, pl := range plan.Sweeps {
		if pl.Point.Compute {
			t.Fatalf("TRIAD planned a compute point: %+v", pl.Point)
		}
		regions[pl.Point.Region]++
		theo := pl.Point.TheoreticalBandwidth
		if (pl.Point.Region == "DRAM") != (theo != 0) {
			t.Fatalf("theoretical bandwidth on %s point: %v", pl.Point.Region, theo)
		}
		if len(pl.Spec.Cases) == 0 {
			t.Fatalf("sweep %s has no cases", pl.Spec.Name)
		}
	}
	if regions["L3"] != 2 || regions["DRAM"] != 2 {
		t.Fatalf("regions: %v", regions)
	}
}

func TestPlanEmptyRegionWarns(t *testing.T) {
	sys, err := hw.Get("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	// Cap the working set below 4x L3 on every socket config: the DRAM
	// regions cannot be populated and must warn, not vanish.
	p.TriadHi = 32 * units.MiB
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Every socket config's DRAM region is empty; each must warn (the
	// dual-socket L3 region empties too — its L2 capacity alone exceeds
	// the cap — which is additional warning, not noise).
	dram := 0
	for _, w := range plan.Warnings {
		if !strings.Contains(w, "missing") {
			t.Fatalf("warning does not explain the missing ceiling: %q", w)
		}
		if strings.Contains(w, "DRAM") {
			dram++
		}
	}
	if dram != len(sys.SocketConfigs()) {
		t.Fatalf("DRAM warnings = %d in %v, want one per socket config", dram, plan.Warnings)
	}
	for _, pl := range plan.Sweeps {
		if pl.Point.Region == "DRAM" {
			t.Fatalf("empty DRAM region still planned: %+v", pl)
		}
	}
}

func TestPlanNativeShape(t *testing.T) {
	eng := bench.NewNativeEngine(1)
	p := testParams()
	p.TriadHi = 256 * units.MiB
	plan, err := Workload{}.Plan(workload.Target{Native: eng}, p)
	if err != nil {
		t.Fatal(err)
	}
	regions := map[string]bool{}
	for _, pl := range plan.Sweeps {
		regions[pl.Point.Region] = true
		if pl.Spec.Clock != eng.Clock {
			t.Fatalf("native sweep %s must share the host clock", pl.Spec.Name)
		}
		if pl.Point.TheoreticalBandwidth != 0 {
			t.Fatalf("native point has a theoretical peak: %+v", pl.Point)
		}
	}
	if !regions["cache"] || !regions["DRAM"] {
		t.Fatalf("native regions: %v", regions)
	}
}

func TestPlanInvertedBounds(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.TriadLo, p.TriadHi = p.TriadHi, p.TriadLo
	if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, p); err == nil {
		t.Fatal("inverted bounds must error")
	}
}
