// Package triad is the STREAM TRIAD memory workload: it plans the
// working-set sweeps whose tuned winners become the roofline's bandwidth
// ceilings, split into cache-residency regions. On simulated systems the
// paper's §III-B L3/DRAM pair is the default, and the §VII future-work
// extension — per-level L1/L2/L3/DRAM residency sweeps, the cache-aware
// roofline — is selectable via Params.TriadLevels. Per-level sweeps are
// chained in increasing-bandwidth order (DRAM seeds L3 seeds L2 seeds
// L1), so a session running with sweep chaining pre-prunes each region's
// search with the previous region's measured winner. Native builds keep
// the assumed-LLC cache/DRAM split (the host's true cache boundaries are
// unknown), likewise chained DRAM-to-cache. It registers itself as
// "triad".
package triad

import (
	"fmt"
	"sort"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/simstream"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func init() { workload.MustRegister(Workload{}) }

// Workload implements workload.Workload for TRIAD.
type Workload struct{}

// Name implements workload.Workload.
func (Workload) Name() string { return "triad" }

// DefaultLevels is the residency-region set planned when Params.TriadLevels
// is empty: the paper's published pair.
func DefaultLevels() []string { return []string{"L3", "DRAM"} }

// Plan builds one bandwidth sweep per (socket configuration x residency
// region) on simulated systems, or one per residency region on the native
// host. A region whose case list filters to empty under the session's
// TriadLo/TriadHi bounds is recorded as a plan warning naming the region
// — the roofline will miss that ceiling, and silence here previously hid
// exactly that. Each socket configuration's regions are chained in
// increasing-bandwidth order via SeedFrom edges; an empty region drops
// out of its chain and the next region seeds from the nearest planned
// slower one.
func (Workload) Plan(t workload.Target, p workload.Params) (workload.Plan, error) {
	if p.TriadLo > p.TriadHi {
		return workload.Plan{}, fmt.Errorf("triad: working-set bounds inverted (lo %v > hi %v)", p.TriadLo, p.TriadHi)
	}
	if t.IsNative() {
		return planNative(t.Native, p), nil
	}
	levels, err := resolveLevels(p.TriadLevels)
	if err != nil {
		return workload.Plan{}, err
	}
	return planSimulated(*t.Sys, p, levels), nil
}

// resolveLevels validates the requested residency regions against
// hw.CacheLevels and returns them in canonical decreasing-bandwidth
// order (L1 first), defaulting to the paper's L3+DRAM pair.
func resolveLevels(requested []string) ([]string, error) {
	if len(requested) == 0 {
		return DefaultLevels(), nil
	}
	if err := hw.ValidateCacheLevels(requested); err != nil {
		return nil, fmt.Errorf("triad: %w", err)
	}
	want := map[string]bool{}
	for _, lv := range requested {
		want[lv] = true
	}
	var out []string
	for _, lv := range hw.CacheLevels() {
		if want[lv] {
			out = append(out, lv)
		}
	}
	return out, nil
}

// regionBounds returns one level's working-set filter for a system and
// socket count: keep is true for working sets resident in that level.
// The L3 and DRAM predicates are exactly the paper reproduction's
// original filters, so the default plan is unchanged; L1 and L2 classify
// against the aggregate private-cache capacities, matching simstream's
// plateau boundaries.
func regionBounds(sys hw.System, sockets int, level string) func(w float64) bool {
	l1 := float64(sys.L1Total(sockets))
	l2 := float64(sys.L2Total(sockets))
	l3 := float64(sys.L3Total(sockets))
	switch level {
	case "L1":
		return func(w float64) bool { return w <= l1 }
	case "L2":
		return func(w float64) bool { return w > l1 && w <= l2 }
	case "L3":
		return func(w float64) bool { return w > l2 && w <= 0.9*l3 }
	default: // DRAM
		return func(w float64) bool { return w > l2 && w >= 4*l3 }
	}
}

func planSimulated(sys hw.System, p workload.Params, levels []string) workload.Plan {
	var plan workload.Plan
	grid := units.TriadGridElements(units.WorkingSetGridDense(p.TriadLo, p.TriadHi, 4))
	for _, sockets := range sys.SocketConfigs() {
		aff := hw.AffinityClose
		if sockets > 1 {
			aff = hw.AffinitySpread
		}
		ids := map[string]string{}
		planned := map[string]bool{}
		for i := len(levels) - 1; i >= 0; i-- { // DRAM .. L1: chain order
			level := levels[i]
			keep := regionBounds(sys, sockets, level)
			eng := bench.NewSimEngine(sys, p.Seed)
			if level == "L1" || level == "L2" {
				// Sub-L3 working sets finish a pass in well under the
				// microsecond timer resolution; batch passes per measured
				// step so the sweep recovers the plateau, not the
				// quantisation floor.
				eng.Triad.MinMeasuredPass = simstream.DefaultMinMeasuredPass
			}
			var cases []bench.Case
			for _, n := range grid {
				if !keep(units.TriadBytes(n)) {
					continue
				}
				cases = append(cases, eng.TriadCase(n, aff, sockets))
			}
			name := fmt.Sprintf("TRIAD %s (%d sockets)", level, sockets)
			if len(cases) == 0 {
				plan.Warnf("%s: no working-set sizes inside %v..%v fall in the %s residency region — its bandwidth ceiling will be missing",
					name, p.TriadLo, p.TriadHi, level)
				continue
			}
			id := fmt.Sprintf("triad/%s/%ds", level, sockets)
			ids[level] = id
			planned[level] = true
			pt := workload.Point{Sockets: sockets, Region: level}
			if level == "DRAM" {
				pt.TheoreticalBandwidth = sys.TheoreticalBandwidth(sockets)
			}
			// Seed from the nearest slower planned level in this socket
			// configuration's chain.
			from := ""
			for j := i + 1; j < len(levels); j++ {
				if planned[levels[j]] {
					from = ids[levels[j]]
					break
				}
			}
			spec := sweep.Spec{Name: name, Clock: eng.Clock, Cases: cases}
			if from == "" {
				plan.Add(id, spec, pt)
			} else {
				plan.Chain(id, from, spec, pt)
			}
		}
	}
	// Restore presentation order: fastest level first within each socket
	// configuration, matching the decreasing-bandwidth legend order the
	// L3-before-DRAM default always had.
	orderPlan(&plan, levels)
	return plan
}

// orderPlan sorts the planned sweeps into (socket-config, level) order
// with levels in canonical decreasing-bandwidth order, without disturbing
// the plan-graph edges. Planning happened in chain order (DRAM first);
// presentation wants L1 first.
func orderPlan(plan *workload.Plan, levels []string) {
	rank := func(pl workload.Planned) int {
		for i, lv := range levels {
			if pl.Point.Region == lv {
				return i
			}
		}
		return len(levels)
	}
	sort.SliceStable(plan.Sweeps, func(i, j int) bool {
		a, b := plan.Sweeps[i], plan.Sweeps[j]
		if a.Point.Sockets != b.Point.Sockets {
			return a.Point.Sockets < b.Point.Sockets
		}
		return rank(a) < rank(b)
	})
}

func planNative(eng *bench.NativeEngine, p workload.Params) workload.Plan {
	var plan workload.Plan
	grid := units.TriadGridElements(units.WorkingSetGridDense(p.TriadLo, p.TriadHi, 2))
	dramID := ""
	for _, region := range []struct {
		name     string
		min, max units.ByteSize
	}{
		{"DRAM", p.AssumedLLC * 4, 1 << 62},
		{"cache", 0, p.AssumedLLC / 2},
	} {
		var cases []bench.Case
		for _, n := range grid {
			w := units.ByteSize(units.TriadBytes(n))
			if w < region.min || w > region.max {
				continue
			}
			cases = append(cases, eng.TriadCase(n))
		}
		name := "native TRIAD " + region.name
		if len(cases) == 0 {
			plan.Warnf("%s: no working-set sizes inside %v..%v fall in the %s residency region (assumed LLC %v) — its bandwidth ceiling will be missing",
				name, p.TriadLo, p.TriadHi, region.name, p.AssumedLLC)
			continue
		}
		id := "triad/" + region.name + "/native"
		spec := sweep.Spec{Name: name, Clock: eng.Clock, Cases: cases}
		pt := workload.Point{Sockets: 1, Region: region.name}
		if region.name == "DRAM" {
			dramID = id
			plan.Add(id, spec, pt)
		} else {
			// Cache bandwidth exceeds DRAM bandwidth, so the DRAM winner
			// is a safe pre-seed for the cache-region search.
			if dramID == "" {
				plan.Add(id, spec, pt)
			} else {
				plan.Chain(id, dramID, spec, pt)
			}
		}
	}
	// Presentation order: cache (faster) before DRAM, as before.
	if len(plan.Sweeps) == 2 {
		plan.Sweeps[0], plan.Sweeps[1] = plan.Sweeps[1], plan.Sweeps[0]
	}
	return plan
}
