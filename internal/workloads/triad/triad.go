// Package triad is the STREAM TRIAD memory workload: it plans the
// working-set sweeps whose tuned winners become the roofline's bandwidth
// ceilings, split into cache-residency regions (L3/DRAM on simulated
// systems per the paper's §III-B; cache/DRAM around the assumed LLC on
// native builds). It registers itself as "triad".
package triad

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func init() { workload.MustRegister(Workload{}) }

// Workload implements workload.Workload for TRIAD.
type Workload struct{}

// Name implements workload.Workload.
func (Workload) Name() string { return "triad" }

// Plan builds one bandwidth sweep per (socket configuration x residency
// region) on simulated systems, or one per residency region on the native
// host. A region whose case list filters to empty under the session's
// TriadLo/TriadHi bounds is recorded as a plan warning naming the region
// — the roofline will miss that ceiling, and silence here previously hid
// exactly that.
func (Workload) Plan(t workload.Target, p workload.Params) (workload.Plan, error) {
	if p.TriadLo > p.TriadHi {
		return workload.Plan{}, fmt.Errorf("triad: working-set bounds inverted (lo %v > hi %v)", p.TriadLo, p.TriadHi)
	}
	if t.IsNative() {
		return planNative(t.Native, p), nil
	}
	return planSimulated(*t.Sys, p), nil
}

func planSimulated(sys hw.System, p workload.Params) workload.Plan {
	var plan workload.Plan
	grid := units.TriadGridElements(units.WorkingSetGridDense(p.TriadLo, p.TriadHi, 4))
	for _, sockets := range sys.SocketConfigs() {
		aff := hw.AffinityClose
		if sockets > 1 {
			aff = hw.AffinitySpread
		}
		for _, region := range []struct {
			name     string
			min, max float64 // working-set bounds as multiples of L3
		}{
			{"L3", 0, 0.9},
			{"DRAM", 4, 1e18},
		} {
			l3 := float64(sys.L3Total(sockets))
			l2 := float64(sys.L2PerCore) * float64(sys.Cores(sockets))
			eng := bench.NewSimEngine(sys, p.Seed)
			var cases []bench.Case
			for _, n := range grid {
				w := units.TriadBytes(n)
				if w <= l2 || w < region.min*l3 || w > region.max*l3 {
					continue
				}
				cases = append(cases, eng.TriadCase(n, aff, sockets))
			}
			name := fmt.Sprintf("TRIAD %s (%d sockets)", region.name, sockets)
			if len(cases) == 0 {
				plan.Warnf("%s: no working-set sizes inside %v..%v fall in the %s residency region — its bandwidth ceiling will be missing",
					name, p.TriadLo, p.TriadHi, region.name)
				continue
			}
			pt := workload.Point{Sockets: sockets, Region: region.name}
			if region.name == "DRAM" {
				pt.TheoreticalBandwidth = sys.TheoreticalBandwidth(sockets)
			}
			plan.Add(sweep.Spec{Name: name, Clock: eng.Clock, Cases: cases}, pt)
		}
	}
	return plan
}

func planNative(eng *bench.NativeEngine, p workload.Params) workload.Plan {
	var plan workload.Plan
	grid := units.TriadGridElements(units.WorkingSetGridDense(p.TriadLo, p.TriadHi, 2))
	for _, region := range []struct {
		name     string
		min, max units.ByteSize
	}{
		{"cache", 0, p.AssumedLLC / 2},
		{"DRAM", p.AssumedLLC * 4, 1 << 62},
	} {
		var cases []bench.Case
		for _, n := range grid {
			w := units.ByteSize(units.TriadBytes(n))
			if w < region.min || w > region.max {
				continue
			}
			cases = append(cases, eng.TriadCase(n))
		}
		name := "native TRIAD " + region.name
		if len(cases) == 0 {
			plan.Warnf("%s: no working-set sizes inside %v..%v fall in the %s residency region (assumed LLC %v) — its bandwidth ceiling will be missing",
				name, p.TriadLo, p.TriadHi, region.name, p.AssumedLLC)
			continue
		}
		plan.Add(
			sweep.Spec{Name: name, Clock: eng.Clock, Cases: cases},
			workload.Point{Sockets: 1, Region: region.name},
		)
	}
	return plan
}
