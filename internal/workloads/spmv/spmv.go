// Package spmv is the CSR sparse matrix-vector workload: it plans the
// autotuning sweeps whose winners become roofline application points at
// SpMV's operational intensity — the memory-bound region between TRIAD
// and DGEMM that the paper's §VII names as the next benchmarking target.
// The tuning axes are the row-chunk size (both engines) and the worker
// thread count (native); the matrix itself is a density-parameterised
// synthetic CSR so runs are reproducible on any host. It registers
// itself as "spmv".
package spmv

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/simspmv"
	kern "rooftune/internal/spmv"
	"rooftune/internal/sweep"
	"rooftune/internal/workload"
)

func init() { workload.MustRegister(Workload{}) }

// Workload implements workload.Workload for SpMV.
type Workload struct{}

// Name implements workload.Workload.
func (Workload) Name() string { return "spmv" }

// Chunks returns the row-chunk search space for an n-row matrix: powers
// of two from 32 to 8192, clamped to the row count. Exported so tests
// and the conformance harness can reason about the planned space.
func Chunks(n int) []int {
	var out []int
	for c := 32; c <= 8192; c *= 2 {
		if c <= n {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, n)
	}
	return out
}

// Plan builds one compute sweep per socket configuration (simulated) or a
// single host sweep over chunk x threads (native). Every simulated sweep
// gets its own engine, like DGEMM and TRIAD, so sweeps stay schedulable
// in any order.
func (Workload) Plan(t workload.Target, p workload.Params) (workload.Plan, error) {
	var plan workload.Plan
	if p.SpMVN <= 0 || p.SpMVNNZPerRow <= 0 {
		return plan, fmt.Errorf("spmv: non-positive matrix shape n=%d nnz/row=%d", p.SpMVN, p.SpMVNNZPerRow)
	}
	if p.SpMVNNZPerRow > p.SpMVN {
		return plan, fmt.Errorf("spmv: nnz/row %d exceeds dimension %d", p.SpMVNNZPerRow, p.SpMVN)
	}
	if t.IsNative() {
		return planNative(t.Native, p), nil
	}
	return planSimulated(*t.Sys, p), nil
}

func planSimulated(sys hw.System, p workload.Params) workload.Plan {
	var plan workload.Plan
	intensity := simspmv.Intensity(p.SpMVN, p.SpMVNNZPerRow)
	for _, sockets := range sys.SocketConfigs() {
		eng := bench.NewSimEngine(sys, p.Seed)
		var cases []bench.Case
		for _, chunk := range Chunks(p.SpMVN) {
			cases = append(cases, eng.SpMVCase(p.SpMVN, p.SpMVNNZPerRow, chunk, sockets))
		}
		plan.Add(
			fmt.Sprintf("spmv/%ds", sockets),
			sweep.Spec{Name: fmt.Sprintf("SpMV (%d sockets)", sockets), Clock: eng.Clock, Cases: cases},
			workload.Point{Compute: true, Label: "SpMV", Sockets: sockets, Intensity: intensity},
		)
	}
	return plan
}

func planNative(eng *bench.NativeEngine, p workload.Params) workload.Plan {
	var plan workload.Plan
	// One matrix shared by every case: synthesis costs more than the
	// product itself and the matrix is read-only under the kernel.
	a := kern.Synthetic(p.SpMVN, p.SpMVNNZPerRow, p.Seed)
	var cases []bench.Case
	for _, threads := range workload.NativeThreadGrid(eng.Threads) {
		for _, chunk := range Chunks(p.SpMVN) {
			cases = append(cases, eng.SpMVCase(a, chunk, threads))
		}
	}
	plan.Add(
		"spmv/native",
		sweep.Spec{Name: "native SpMV", Clock: eng.Clock, Cases: cases},
		workload.Point{Compute: true, Label: "SpMV", Sockets: 1, Intensity: a.Intensity()},
	)
	return plan
}
