package spmv

import (
	"context"
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/simspmv"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func testParams() workload.Params {
	return workload.Params{Seed: 1021, SpMVN: 1 << 16, SpMVNNZPerRow: 16}
}

func TestPlanSimulatedShape(t *testing.T) {
	sys, err := hw.Get("2650v4") // dual socket
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", plan.Warnings)
	}
	if len(plan.Sweeps) != len(sys.SocketConfigs()) {
		t.Fatalf("sweeps = %d, want one per socket config %v", len(plan.Sweeps), sys.SocketConfigs())
	}
	wantIntensity := simspmv.Intensity(1<<16, 16)
	for i, pl := range plan.Sweeps {
		sockets := sys.SocketConfigs()[i]
		pt := pl.Point
		if !pt.Compute || pt.Label != "SpMV" || pt.Sockets != sockets || pt.Region != "" {
			t.Fatalf("sweep %d point = %+v", i, pt)
		}
		if pt.Intensity != wantIntensity {
			t.Fatalf("sweep %d intensity = %v, want %v", i, pt.Intensity, wantIntensity)
		}
		if pt.Intensity <= units.TriadIntensity {
			t.Fatalf("SpMV intensity %v not above TRIAD's", pt.Intensity)
		}
		if len(pl.Spec.Cases) != len(Chunks(1<<16)) || pl.Spec.Clock == nil {
			t.Fatalf("sweep %d spec malformed: %d cases", i, len(pl.Spec.Cases))
		}
		if !strings.Contains(pl.Spec.Name, "SpMV") {
			t.Fatalf("sweep %d name %q", i, pl.Spec.Name)
		}
	}
	if plan.Sweeps[0].Spec.Clock == plan.Sweeps[1].Spec.Clock {
		t.Fatal("sweeps share a clock")
	}
}

func TestPlanNativeShape(t *testing.T) {
	eng := bench.NewNativeEngine(4)
	p := testParams()
	p.SpMVN, p.SpMVNNZPerRow = 4096, 8 // keep the shared matrix small
	plan, err := Workload{}.Plan(workload.Target{Native: eng}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sweeps) != 1 {
		t.Fatalf("native sweeps = %d", len(plan.Sweeps))
	}
	pl := plan.Sweeps[0]
	if !pl.Point.Compute || pl.Point.Label != "SpMV" || pl.Point.Sockets != 1 {
		t.Fatalf("native point = %+v", pl.Point)
	}
	// chunk grid x thread grid {1, 2, 4}.
	if want := len(Chunks(4096)) * 3; len(pl.Spec.Cases) != want {
		t.Fatalf("native cases = %d, want %d", len(pl.Spec.Cases), want)
	}
	if pl.Spec.Clock != eng.Clock {
		t.Fatal("native sweep must share the host clock")
	}
}

func TestPlanRejectsBadShape(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []workload.Params{
		{Seed: 1, SpMVN: 0, SpMVNNZPerRow: 8},
		{Seed: 1, SpMVN: 1024, SpMVNNZPerRow: 0},
		{Seed: 1, SpMVN: 16, SpMVNNZPerRow: 32},
	} {
		if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, p); err == nil {
			t.Fatalf("params %+v must error", p)
		}
	}
}

// TestTunedWinnerMatchesModelArgmax runs the full simulated sweep twice:
// equal seeds must reproduce bit-identical winners, and the winner's
// steady-state value must sit within 1% of the calibrated surface's
// argmax — the tolerance the paper itself reports for its searches
// (Tables IV vs VIII-XI), since adjacent chunks near the peak differ by
// less than the measurement noise.
func TestTunedWinnerMatchesModelArgmax(t *testing.T) {
	sys, err := hw.Get("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	run := func() []sweep.Outcome {
		plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, p)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]sweep.Spec, len(plan.Sweeps))
		for i, pl := range plan.Sweeps {
			specs[i] = pl.Spec
		}
		runner := &sweep.Runner{
			Budget: bench.DefaultBudget().WithFlags(true, true, true),
			Order:  core.OrderForward,
		}
		outs, err := runner.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	first, second := run(), run()

	model := simspmv.NewModel(sys)
	for i, out := range first {
		cfg, err := out.SpMV()
		if err != nil {
			t.Fatal(err)
		}
		again, err := second[i].SpMV()
		if err != nil {
			t.Fatal(err)
		}
		if cfg != again || out.BestValue() != second[i].BestValue() {
			t.Fatalf("sweep %s not reproducible: %+v/%g vs %+v/%g",
				out.Name, cfg, out.BestValue(), again, second[i].BestValue())
		}
		sockets := sys.SocketConfigs()[i]
		bestFlops := units.Flops(0)
		for _, c := range Chunks(p.SpMVN) {
			if f := model.SteadyFlops(p.SpMVN, p.SpMVNNZPerRow, c, sockets); f > bestFlops {
				bestFlops = f
			}
		}
		won := model.SteadyFlops(p.SpMVN, p.SpMVNNZPerRow, cfg.ChunkRows, sockets)
		if float64(won) < 0.99*float64(bestFlops) {
			t.Fatalf("sweep %s winner chunk %d at %v, >1%% below model argmax %v",
				out.Name, cfg.ChunkRows, won, bestFlops)
		}
		if cfg.N != p.SpMVN || cfg.NNZPerRow != p.SpMVNNZPerRow || cfg.Sockets != sockets {
			t.Fatalf("winner config %+v inconsistent with plan", cfg)
		}
	}
}
