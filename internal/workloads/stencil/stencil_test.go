package stencil

import (
	"context"
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/simstencil"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func testParams() workload.Params {
	return workload.Params{Seed: 1021, StencilNX: 2048, StencilNY: 2048}
}

func TestPlanSimulatedShape(t *testing.T) {
	sys, err := hw.Get("2650v4") // dual socket
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", plan.Warnings)
	}
	if len(plan.Sweeps) != len(sys.SocketConfigs()) {
		t.Fatalf("sweeps = %d, want one per socket config %v", len(plan.Sweeps), sys.SocketConfigs())
	}
	wantIntensity := simstencil.Intensity(2048, 2048)
	for i, pl := range plan.Sweeps {
		sockets := sys.SocketConfigs()[i]
		pt := pl.Point
		if !pt.Compute || pt.Label != "stencil" || pt.Sockets != sockets || pt.Region != "" {
			t.Fatalf("sweep %d point = %+v", i, pt)
		}
		if pt.Intensity != wantIntensity || pt.Intensity <= units.TriadIntensity {
			t.Fatalf("sweep %d intensity = %v", i, pt.Intensity)
		}
		if len(pl.Spec.Cases) != len(Tiles(2048, 2048)) || pl.Spec.Clock == nil {
			t.Fatalf("sweep %d spec malformed: %d cases", i, len(pl.Spec.Cases))
		}
		if !strings.Contains(pl.Spec.Name, "stencil") {
			t.Fatalf("sweep %d name %q", i, pl.Spec.Name)
		}
	}
	if plan.Sweeps[0].Spec.Clock == plan.Sweeps[1].Spec.Clock {
		t.Fatal("sweeps share a clock")
	}
}

func TestPlanNativeShape(t *testing.T) {
	eng := bench.NewNativeEngine(2)
	p := testParams()
	p.StencilNX, p.StencilNY = 512, 512
	plan, err := Workload{}.Plan(workload.Target{Native: eng}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sweeps) != 1 {
		t.Fatalf("native sweeps = %d", len(plan.Sweeps))
	}
	pl := plan.Sweeps[0]
	if !pl.Point.Compute || pl.Point.Label != "stencil" || pl.Point.Sockets != 1 {
		t.Fatalf("native point = %+v", pl.Point)
	}
	// tile grid x thread grid {1, 2}.
	if want := len(Tiles(512, 512)) * 2; len(pl.Spec.Cases) != want {
		t.Fatalf("native cases = %d, want %d", len(pl.Spec.Cases), want)
	}
	if pl.Spec.Clock != eng.Clock {
		t.Fatal("native sweep must share the host clock")
	}
}

func TestTilesClampToTinyGrid(t *testing.T) {
	tiles := Tiles(16, 16)
	if len(tiles) == 0 {
		t.Fatal("tiny grid planned no tiles")
	}
	for _, tile := range tiles {
		if tile[0] > 14 || tile[1] > 14 {
			t.Fatalf("tile %v exceeds the 14x14 interior", tile)
		}
	}
}

func TestPlanRejectsBadShape(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, workload.Params{StencilNX: 2, StencilNY: 100}); err == nil {
		t.Fatal("degenerate grid must error")
	}
}

// TestTunedWinnerMatchesModelArgmax mirrors the SpMV workload test: the
// simulated sweep is reproducible per seed and its winner sits within 1%
// of the calibrated surface's argmax (adjacent tiles near the peak can
// differ by less than the measurement noise).
func TestTunedWinnerMatchesModelArgmax(t *testing.T) {
	sys, err := hw.Get("Gold 6132")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	run := func() []sweep.Outcome {
		plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, p)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]sweep.Spec, len(plan.Sweeps))
		for i, pl := range plan.Sweeps {
			specs[i] = pl.Spec
		}
		runner := &sweep.Runner{
			Budget: bench.DefaultBudget().WithFlags(true, true, true),
			Order:  core.OrderForward,
		}
		outs, err := runner.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	first, second := run(), run()

	model := simstencil.NewModel(sys)
	for i, out := range first {
		cfg, err := out.Stencil()
		if err != nil {
			t.Fatal(err)
		}
		again, err := second[i].Stencil()
		if err != nil {
			t.Fatal(err)
		}
		if cfg != again || out.BestValue() != second[i].BestValue() {
			t.Fatalf("sweep %s not reproducible", out.Name)
		}
		sockets := sys.SocketConfigs()[i]
		bestFlops := units.Flops(0)
		for _, tile := range Tiles(p.StencilNX, p.StencilNY) {
			if f := model.SteadyFlops(p.StencilNX, p.StencilNY, tile[0], tile[1], sockets); f > bestFlops {
				bestFlops = f
			}
		}
		won := model.SteadyFlops(p.StencilNX, p.StencilNY, cfg.TileX, cfg.TileY, sockets)
		if float64(won) < 0.99*float64(bestFlops) {
			t.Fatalf("sweep %s winner tile %dx%d at %v, >1%% below model argmax %v",
				out.Name, cfg.TileX, cfg.TileY, won, bestFlops)
		}
	}
}
