// Package stencil is the 2D 5-point Jacobi workload: it plans the
// autotuning sweeps whose winners become roofline application points at
// the stencil's 0.25 FLOP/B operational intensity — with SpMV, the
// second of the two §VII memory-bound gaps between TRIAD and DGEMM. The
// tuning axes are the tile dimensions (both engines) and the worker
// thread count (native). It registers itself as "stencil".
package stencil

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/simstencil"
	"rooftune/internal/sweep"
	"rooftune/internal/workload"
)

func init() { workload.MustRegister(Workload{}) }

// Workload implements workload.Workload for the stencil.
type Workload struct{}

// Name implements workload.Workload.
func (Workload) Name() string { return "stencil" }

// Tiles returns the tile-shape search space for an nx x ny grid: widths
// from 128 to 2048 columns crossed with heights of 8, 32 and 128 rows,
// clamped to the interior. Exported so tests and the conformance harness
// can reason about the planned space.
func Tiles(nx, ny int) [][2]int {
	xs := axis([]int{128, 256, 512, 1024, 2048}, nx-2)
	ys := axis([]int{8, 32, 128}, ny-2)
	out := make([][2]int, 0, len(xs)*len(ys))
	for _, tx := range xs {
		for _, ty := range ys {
			out = append(out, [2]int{tx, ty})
		}
	}
	return out
}

// axis clamps a tile axis to the grid interior, falling back to the full
// span when every candidate exceeds it.
func axis(candidates []int, span int) []int {
	var out []int
	for _, v := range candidates {
		if v <= span {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = append(out, span)
	}
	return out
}

// Plan builds one compute sweep per socket configuration (simulated) or a
// single host sweep over tile x threads (native).
func (Workload) Plan(t workload.Target, p workload.Params) (workload.Plan, error) {
	var plan workload.Plan
	if p.StencilNX < 3 || p.StencilNY < 3 {
		return plan, fmt.Errorf("stencil: grid %dx%d too small for a 5-point stencil", p.StencilNX, p.StencilNY)
	}
	if t.IsNative() {
		return planNative(t.Native, p), nil
	}
	return planSimulated(*t.Sys, p), nil
}

func planSimulated(sys hw.System, p workload.Params) workload.Plan {
	var plan workload.Plan
	intensity := simstencil.Intensity(p.StencilNX, p.StencilNY)
	for _, sockets := range sys.SocketConfigs() {
		eng := bench.NewSimEngine(sys, p.Seed)
		var cases []bench.Case
		for _, tile := range Tiles(p.StencilNX, p.StencilNY) {
			cases = append(cases, eng.StencilCase(p.StencilNX, p.StencilNY, tile[0], tile[1], sockets))
		}
		plan.Add(
			fmt.Sprintf("stencil/%ds", sockets),
			sweep.Spec{Name: fmt.Sprintf("stencil (%d sockets)", sockets), Clock: eng.Clock, Cases: cases},
			workload.Point{Compute: true, Label: "stencil", Sockets: sockets, Intensity: intensity},
		)
	}
	return plan
}

func planNative(eng *bench.NativeEngine, p workload.Params) workload.Plan {
	var plan workload.Plan
	var cases []bench.Case
	for _, threads := range workload.NativeThreadGrid(eng.Threads) {
		for _, tile := range Tiles(p.StencilNX, p.StencilNY) {
			cases = append(cases, eng.StencilCase(p.StencilNX, p.StencilNY, tile[0], tile[1], threads))
		}
	}
	plan.Add(
		"stencil/native",
		sweep.Spec{Name: "native stencil", Clock: eng.Clock, Cases: cases},
		workload.Point{Compute: true, Label: "stencil", Sockets: 1,
			Intensity: simstencil.Intensity(p.StencilNX, p.StencilNY)},
	)
	return plan
}
