// Package dgemm is the DGEMM compute workload: it plans the matrix-
// multiplication sweeps whose tuned winners become the roofline's compute
// ceilings (one per socket configuration on simulated systems, one host
// sweep on native builds). It registers itself as "dgemm".
package dgemm

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/sweep"
	"rooftune/internal/workload"
)

func init() { workload.MustRegister(Workload{}) }

// Workload implements workload.Workload for DGEMM.
type Workload struct{}

// Name implements workload.Workload.
func (Workload) Name() string { return "dgemm" }

// Plan builds one compute sweep per socket configuration (simulated) or a
// single host sweep (native). Every simulated sweep gets its own engine:
// the calibrated models derive each sample by hashing (seed,
// configuration, invocation), so splitting the engine changes no
// measurement while making the sweeps schedulable in any order.
func (Workload) Plan(t workload.Target, p workload.Params) (workload.Plan, error) {
	var plan workload.Plan
	if len(p.Space) == 0 {
		return plan, fmt.Errorf("dgemm: empty search space")
	}
	if t.IsNative() {
		eng := t.Native
		cases := make([]bench.Case, len(p.Space))
		for i, d := range p.Space {
			cases[i] = eng.DGEMMCase(d.N, d.M, d.K)
		}
		plan.Add(
			"dgemm/native",
			sweep.Spec{Name: "native DGEMM", Clock: eng.Clock, Cases: cases},
			workload.Point{Compute: true, Sockets: 1},
		)
		return plan, nil
	}
	sys := *t.Sys
	for _, sockets := range sys.SocketConfigs() {
		eng := bench.NewSimEngine(sys, p.Seed)
		cases := make([]bench.Case, len(p.Space))
		for i, d := range p.Space {
			cases[i] = eng.DGEMMCase(d.N, d.M, d.K, sockets)
		}
		plan.Add(
			fmt.Sprintf("dgemm/%ds", sockets),
			sweep.Spec{Name: fmt.Sprintf("DGEMM (%d sockets)", sockets), Clock: eng.Clock, Cases: cases},
			workload.Point{Compute: true, Sockets: sockets, TheoreticalFlops: sys.TheoreticalFlops(sockets)},
		)
	}
	return plan, nil
}
