package dgemm

import (
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/workload"
)

func testParams() workload.Params {
	return workload.Params{
		Seed:  1021,
		Space: []core.Dims{{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128}},
	}
}

func TestPlanSimulatedShape(t *testing.T) {
	sys, err := hw.Get("2650v4") // dual socket
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Workload{}.Plan(workload.Target{Sys: &sys}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", plan.Warnings)
	}
	if len(plan.Sweeps) != len(sys.SocketConfigs()) {
		t.Fatalf("sweeps = %d, want one per socket config %v", len(plan.Sweeps), sys.SocketConfigs())
	}
	for i, pl := range plan.Sweeps {
		sockets := sys.SocketConfigs()[i]
		if !pl.Point.Compute || pl.Point.Sockets != sockets {
			t.Fatalf("sweep %d point = %+v", i, pl.Point)
		}
		if pl.Point.TheoreticalFlops != sys.TheoreticalFlops(sockets) {
			t.Fatalf("sweep %d theoretical = %v", i, pl.Point.TheoreticalFlops)
		}
		if len(pl.Spec.Cases) != 2 || pl.Spec.Clock == nil {
			t.Fatalf("sweep %d spec malformed: %d cases", i, len(pl.Spec.Cases))
		}
		if !strings.Contains(pl.Spec.Name, "DGEMM") {
			t.Fatalf("sweep %d name %q", i, pl.Spec.Name)
		}
	}
	// Sweeps must not share a clock: independence is what makes them
	// schedulable in any order.
	if plan.Sweeps[0].Spec.Clock == plan.Sweeps[1].Spec.Clock {
		t.Fatal("sweeps share a clock")
	}
}

func TestPlanNativeShape(t *testing.T) {
	eng := bench.NewNativeEngine(1)
	plan, err := Workload{}.Plan(workload.Target{Native: eng}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sweeps) != 1 {
		t.Fatalf("native sweeps = %d", len(plan.Sweeps))
	}
	pl := plan.Sweeps[0]
	if !pl.Point.Compute || pl.Point.Sockets != 1 || pl.Point.TheoreticalFlops != 0 {
		t.Fatalf("native point = %+v", pl.Point)
	}
}

func TestPlanEmptySpace(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Space = nil
	if _, err := (Workload{}).Plan(workload.Target{Sys: &sys}, p); err == nil {
		t.Fatal("empty space must error")
	}
}
