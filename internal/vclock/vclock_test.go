package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	if v.Now() != 0 {
		t.Fatal("virtual clock must start at zero")
	}
	v.Advance(5 * time.Second)
	v.Advance(250 * time.Millisecond)
	if got := v.Now(); got != 5250*time.Millisecond {
		t.Fatalf("Now = %v", got)
	}
}

func TestVirtualNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance must panic")
		}
	}()
	NewVirtual().Advance(-time.Second)
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				v.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); got != workers*each*time.Microsecond {
		t.Fatalf("concurrent advance lost time: %v", got)
	}
}

func TestRealClockMonotone(t *testing.T) {
	r := NewReal()
	a := r.Now()
	time.Sleep(2 * time.Millisecond)
	b := r.Now()
	if b <= a {
		t.Fatalf("real clock not advancing: %v -> %v", a, b)
	}
	r.Advance(time.Hour) // must be a no-op
	if r.Now() > b+time.Second {
		t.Fatal("Advance on real clock must not jump time")
	}
}

func TestStopwatch(t *testing.T) {
	v := NewVirtual()
	sw := NewStopwatch(v)
	v.Advance(3 * time.Second)
	if got := sw.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed = %v", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed after restart = %v", got)
	}
	v.Advance(time.Second)
	if got := sw.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed = %v", got)
	}
}

func TestQuantizeMicro(t *testing.T) {
	if got := QuantizeMicro(1234567 * time.Nanosecond); got != 1234*time.Microsecond {
		t.Fatalf("QuantizeMicro = %v", got)
	}
	if got := QuantizeMicro(999 * time.Nanosecond); got != 0 {
		t.Fatalf("sub-microsecond must truncate to 0, got %v", got)
	}
}
