// Package vclock provides the timing abstraction that lets the same
// benchmark loops run against real kernels (wall-clock time) and simulated
// kernels (virtual time). The paper's search-time results (Tables VIII-XI)
// measure time *spent benchmarking*; a virtual clock integrates exactly
// that quantity deterministically, so speedup ratios are reproducible.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonic time source. Implementations are the real wall
// clock and the simulator's virtual clock.
type Clock interface {
	// Now returns the elapsed time since the clock's origin.
	Now() time.Duration
	// Advance moves the clock forward by d. The real clock implements
	// this by sleeping is NOT desirable in benchmarks, so the real clock's
	// Advance is a no-op: real time advances by itself while kernels run.
	Advance(d time.Duration)
}

// Virtual is a deterministic clock advanced explicitly by the simulator.
// It is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtual returns a virtual clock at time zero.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves virtual time forward by d. Negative d panics: the clock is
// monotonic by contract.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: Advance by negative duration %v", d))
	}
	v.mu.Lock()
	v.now += d
	v.mu.Unlock()
}

// Real is the wall clock, measured from its creation. Advance is a no-op
// because real time passes on its own while real kernels execute.
type Real struct {
	origin time.Time
}

// NewReal returns a wall clock whose origin is now.
func NewReal() *Real { return &Real{origin: time.Now()} }

// Now returns the wall time elapsed since the clock was created.
func (r *Real) Now() time.Duration { return time.Since(r.origin) }

// Advance is a no-op on the real clock.
func (r *Real) Advance(time.Duration) {}

// Stopwatch measures an interval on any Clock, mimicking the paper's
// gettimeofday-before/after pattern.
type Stopwatch struct {
	clock Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch on clock.
func NewStopwatch(clock Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Restart resets the start point to now.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }

// Elapsed returns time since the last (re)start.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// QuantizeMicro rounds d to microsecond resolution, the granularity of
// gettimeofday that the paper's measurement loop observes. The simulator
// applies this to every sample so that very short kernels exhibit the same
// quantisation noise a real benchmark would.
func QuantizeMicro(d time.Duration) time.Duration {
	return d.Truncate(time.Microsecond)
}

// Time runs f and returns its wall-clock duration, quantised like the
// paper's gettimeofday-before/after pattern. It is the one sanctioned
// wall-clock measurement primitive: native kernel Steps call it instead
// of touching time.Now directly, so the rooflint nodeterminism analyzer
// can forbid raw wall-clock reads everywhere on the measurement path
// while real kernels keep measuring real time here.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return QuantizeMicro(time.Since(start))
}
