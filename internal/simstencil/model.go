// Package simstencil models 2D 5-point Jacobi performance on the paper's
// systems, completing the simulated-engine trio alongside simblas and
// simspmv. Like simspmv it is calibrated derivatively from simstream's
// Table VI residency curves: one Jacobi sweep streams two grids through
// the memory hierarchy at 0.25 FLOP/B, and the tuning axes — the tile
// width and height — shape that service rate through three mechanisms:
//
//   - narrow tiles truncate the contiguous runs the prefetchers need,
//   - tiles whose three-row window falls out of L1 stop turning the two
//     vertical-neighbour loads into cache hits (extra traffic),
//   - tall tiles coarsen the band partition until cores idle.
//
// The resulting surface has a unique argmax over any realistic tile
// grid, so the autotuner has a real optimum to find, and the shared noise
// family (lognormal body, spikes, invocation shifts, warm-up ramp) drives
// the adaptive stop conditions.
package simstencil

import (
	"math"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/simstream"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// Params calibrates one system's stencil behaviour.
type Params struct {
	// StreamEff is the fraction of streaming bandwidth the stencil's
	// three-row access pattern sustains at the ideal tile; stencils come
	// closer to STREAM than gathers do, so it sits above simspmv's
	// GatherEff.
	StreamEff float64
	// OverheadCols is the per-row loop start cost in equivalent columns;
	// tiles narrower than this are overhead-dominated.
	OverheadCols float64
	// SpillPenalty scales the bandwidth loss when the tile's working
	// window exceeds L1 (vertical-neighbour reuse lost).
	SpillPenalty float64

	// Noise model, same family as the sibling packages.
	IterSigma, InvSigma   float64
	SpikeProb, SpikeScale float64
	RampDepth, RampTau    float64
}

// Model is a calibrated stencil performance model for one system.
type Model struct {
	Sys    hw.System
	BW     *simstream.Model
	params map[int]Params
}

// NewModel builds the stencil model for a system; uncalibrated systems
// get the documented generic parameters.
func NewModel(sys hw.System) *Model {
	m := &Model{Sys: sys, BW: simstream.NewModel(sys), params: map[int]Params{}}
	calib, ok := stencilCalibrations[sys.Name]
	if !ok {
		calib = genericCalibration(sys)
	}
	for s, p := range calib {
		m.params[s] = p
	}
	return m
}

// ParamsFor returns the calibration for a socket count with the sibling
// models' nearest-fallback behaviour.
func (m *Model) ParamsFor(sockets int) Params {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > m.Sys.Sockets {
		sockets = m.Sys.Sockets
	}
	if p, ok := m.params[sockets]; ok {
		return p
	}
	for s := sockets; s >= 1; s-- {
		if p, ok := m.params[s]; ok {
			return p
		}
	}
	return genericCalibration(m.Sys)[1]
}

// Traffic returns one sweep's minimum memory traffic in bytes, mirroring
// stencil.Grid.Bytes so simulated and native kernels share an intensity.
func Traffic(nx, ny int) float64 { return 16 * float64(nx) * float64(ny) }

// Flops returns one sweep's floating-point work, mirroring
// stencil.Grid.Flops.
func Flops(nx, ny int) float64 { return 4 * float64(nx-2) * float64(ny-2) }

// Intensity returns the kernel's operational intensity.
func Intensity(nx, ny int) units.Intensity {
	return units.Intensity(Flops(nx, ny) / Traffic(nx, ny))
}

// TileEff returns the deterministic efficiency of a (tileX, tileY) shape
// on the given socket count: run-length, cache-window, band-utilisation
// and band-restart terms, each in (0, 1], with a unique maximum over any
// realistic tile grid. Exported so tests can assert the argmax the tuner
// must find.
func (m *Model) TileEff(nx, ny, tileX, tileY, sockets int) float64 {
	if tileX < 1 {
		tileX = 1
	}
	if tileY < 1 {
		tileY = 1
	}
	p := m.ParamsFor(sockets)
	cores := float64(m.Sys.Cores(sockets))

	// Run length: each tile row restarts the streaming loop.
	run := float64(tileX) / (float64(tileX) + p.OverheadCols)

	// Cache window: the sweep reads three src rows and writes one dst row
	// per tile band; 4 rows x 8 bytes x tileX must stay L1-resident for
	// the vertical neighbours to hit.
	window := 32 * float64(tileX)
	l1 := float64(m.Sys.L1PerCore)
	spill := 1.0
	if window > l1 {
		spill = 1 / (1 + p.SpillPenalty*(window-l1)/l1)
	}

	// Band utilisation: bands of tileY rows are the parallel tasks,
	// statically partitioned over the cores; utilisation collapses once
	// there are fewer bands than workers.
	bands := math.Ceil(float64(ny-2) / float64(tileY))
	util := bands / (math.Ceil(bands/cores) * cores)

	// Each band restarts the x-tile traversal (the halo rows re-enter
	// cache), so very short bands churn.
	restart := float64(tileY) / (float64(tileY) + 1.5)
	return run * spill * util * restart
}

// SteadyFlops returns the deterministic steady-state Jacobi throughput
// for an nx x ny grid at the given tile shape and socket count.
func (m *Model) SteadyFlops(nx, ny, tileX, tileY, sockets int) units.Flops {
	if nx < 3 || ny < 3 {
		return 0
	}
	p := m.ParamsFor(sockets)
	aff := hw.AffinityClose
	if sockets > 1 {
		aff = hw.AffinitySpread
	}
	bw := float64(m.BW.SteadyBandwidthBytes(Traffic(nx, ny), aff, sockets))
	flops := bw * float64(Intensity(nx, ny)) * p.StreamEff * m.TileEff(nx, ny, tileX, tileY, sockets)
	return units.Flops(flops)
}

// Invocation simulates one Jacobi benchmark process invocation.
type Invocation struct {
	model   *Model
	nx, ny  int
	tx, ty  int
	sockets int
	rng     *xrand.Rand
	steadyT float64
	params  Params
	iter    int
}

// NewInvocation creates the deterministic per-invocation state, hashing
// (seed, configuration, invocation) as all the simulated models do.
func (m *Model) NewInvocation(nx, ny, tileX, tileY, sockets, inv int, seed uint64) *Invocation {
	p := m.ParamsFor(sockets)
	rng := xrand.New(xrand.Mix(seed, 0x57e9c1, uint64(nx), uint64(ny),
		uint64(tileX), uint64(tileY), uint64(sockets), uint64(inv)))
	steady := Flops(nx, ny) / float64(m.SteadyFlops(nx, ny, tileX, tileY, sockets))
	steady *= rng.LogNormal(0, p.InvSigma)
	return &Invocation{model: m, nx: nx, ny: ny, tx: tileX, ty: tileY,
		sockets: sockets, rng: rng, steadyT: steady, params: p}
}

// SetupTime models process start plus first-touch of the two grids at
// half DRAM speed.
func (inv *Invocation) SetupTime() time.Duration {
	const startup = 3 * time.Millisecond
	bw := float64(inv.model.Sys.TheoreticalBandwidth(inv.sockets)) * 0.5
	return startup + time.Duration(Traffic(inv.nx, inv.ny)/bw*float64(time.Second))
}

// WarmupTime is one unmeasured sweep.
func (inv *Invocation) WarmupTime() time.Duration { return inv.stepRaw() }

// StepTime returns the next measured sweep, at gettimeofday resolution.
func (inv *Invocation) StepTime() time.Duration {
	return vclock.QuantizeMicro(inv.stepRaw())
}

func (inv *Invocation) stepRaw() time.Duration {
	p := inv.params
	ramp := 1 - p.RampDepth*math.Exp(-float64(inv.iter+1)/p.RampTau)
	inv.iter++
	t := inv.steadyT / ramp
	t *= inv.rng.LogNormal(0, p.IterSigma)
	if inv.rng.Bernoulli(p.SpikeProb) {
		t *= 1 + inv.rng.Gamma(2, p.SpikeScale/2)
	}
	const overhead = 4e-7
	d := time.Duration((t + overhead) * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Work returns the FLOPs of one sweep.
func (inv *Invocation) Work() float64 { return Flops(inv.nx, inv.ny) }

// stencilCalibrations holds per-system overrides: stencils sustain a
// higher fraction of streaming bandwidth than gathers, with the Skylakes
// again slightly ahead, and inherit each system's TRIAD noise character.
var stencilCalibrations = map[string]map[int]Params{
	"2650v4":    {1: broadwellStencil(), 2: broadwellStencil()},
	"2695v4":    {1: noisyBroadwellStencil(), 2: noisyBroadwellStencil()},
	"Gold 6132": {1: skylakeStencil(), 2: skylakeStencil()},
	"Gold 6148": {1: skylakeStencil(), 2: skylakeStencil()},
}

func broadwellStencil() Params {
	return Params{
		StreamEff: 0.88, OverheadCols: 12, SpillPenalty: 0.35,
		IterSigma: 0.013, InvSigma: 0.005,
		SpikeProb: 0.006, SpikeScale: 0.10,
		RampDepth: 0.10, RampTau: 1.4,
	}
}

func noisyBroadwellStencil() Params {
	p := broadwellStencil()
	p.IterSigma, p.InvSigma = 0.021, 0.008
	p.SpikeProb, p.SpikeScale = 0.010, 0.15
	return p
}

func skylakeStencil() Params {
	p := broadwellStencil()
	p.StreamEff = 0.90
	return p
}

// genericCalibration gives uncalibrated systems the Broadwell defaults on
// every socket count.
func genericCalibration(sys hw.System) map[int]Params {
	out := make(map[int]Params, sys.Sockets)
	for s := 1; s <= sys.Sockets; s++ {
		out[s] = broadwellStencil()
	}
	return out
}
