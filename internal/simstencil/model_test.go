package simstencil

import (
	"testing"

	"rooftune/internal/hw"
	"rooftune/internal/stencil"
	"rooftune/internal/units"
)

func sys(t *testing.T, name string) hw.System {
	t.Helper()
	s, err := hw.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTrafficMirrorsNativeKernel pins the simulated intensity to the
// native kernel's, as simspmv does for CSR.
func TestTrafficMirrorsNativeKernel(t *testing.T) {
	for _, cfg := range [][2]int{{64, 64}, {1024, 512}, {67, 43}} {
		nx, ny := cfg[0], cfg[1]
		g := stencil.NewGrid(nx, ny)
		if got, want := Traffic(nx, ny), g.Bytes(); got != want {
			t.Fatalf("Traffic(%d, %d) = %g, native grid says %g", nx, ny, got, want)
		}
		if got, want := Flops(nx, ny), g.Flops(); got != want {
			t.Fatalf("Flops(%d, %d) = %g, native grid says %g", nx, ny, got, want)
		}
		if got, want := Intensity(nx, ny), g.Intensity(); got != want {
			t.Fatalf("Intensity(%d, %d) = %v, native grid says %v", nx, ny, got, want)
		}
	}
}

func TestIntensityBetweenTriadAndDGEMM(t *testing.T) {
	i := Intensity(2048, 2048)
	if i <= units.TriadIntensity || i >= units.DGEMMIntensity(500, 500, 64) {
		t.Fatalf("stencil intensity %v outside (TRIAD, DGEMM)", i)
	}
}

// TestTileArgmaxUniqueAndOffSpill: over the workload's tile grid the
// surface must have a unique argmax on every paper system, the argmax
// must not sit at the L1-spilling widths (the cache-window term must
// bite), and every value must be positive.
func TestTileArgmaxUniqueAndOffSpill(t *testing.T) {
	xs := []int{128, 256, 512, 1024, 2048}
	ys := []int{8, 32, 128}
	const nx, ny = 2048, 2048
	for _, name := range []string{"2650v4", "2695v4", "Gold 6132", "Gold 6148"} {
		m := NewModel(sys(t, name))
		for _, sockets := range m.Sys.SocketConfigs() {
			type tile struct{ x, y int }
			var best tile
			bestF, ties := units.Flops(0), 0
			for _, tx := range xs {
				for _, ty := range ys {
					f := m.SteadyFlops(nx, ny, tx, ty, sockets)
					if f <= 0 {
						t.Fatalf("%s s%d tile %dx%d: non-positive flops", name, sockets, tx, ty)
					}
					switch {
					case f > bestF:
						best, bestF, ties = tile{tx, ty}, f, 0
					case f == bestF:
						ties++
					}
				}
			}
			if ties != 0 {
				t.Fatalf("%s s%d: %d ties at the argmax", name, sockets, ties)
			}
			if spill := 32 * best.x; spill > int(m.Sys.L1PerCore)*2 {
				t.Fatalf("%s s%d: argmax %dx%d spills far past L1 — cache term inert", name, sockets, best.x, best.y)
			}
		}
	}
}

// TestInvocationDeterminism mirrors simspmv's: hashed noise streams
// depend only on (configuration, invocation, seed).
func TestInvocationDeterminism(t *testing.T) {
	s := sys(t, "Gold 6132")
	a, b := NewModel(s), NewModel(s)
	for inv := 0; inv < 3; inv++ {
		ia := a.NewInvocation(2048, 2048, 512, 32, 1, inv, 1021)
		ib := b.NewInvocation(2048, 2048, 512, 32, 1, inv, 1021)
		if ia.SetupTime() != ib.SetupTime() || ia.WarmupTime() != ib.WarmupTime() {
			t.Fatal("setup/warmup diverge")
		}
		for i := 0; i < 20; i++ {
			if ta, tb := ia.StepTime(), ib.StepTime(); ta != tb {
				t.Fatalf("invocation %d step %d: %v != %v", inv, i, ta, tb)
			}
		}
		if ia.Work() != Flops(2048, 2048) {
			t.Fatalf("work = %g", ia.Work())
		}
	}
}

func TestUncalibratedSystemWorks(t *testing.T) {
	s := sys(t, "2650v4")
	s.Name = "my-custom-box"
	m := NewModel(s)
	if f := m.SteadyFlops(2048, 2048, 512, 32, 1); f <= 0 {
		t.Fatalf("generic calibration gave %v", f)
	}
}
