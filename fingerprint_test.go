package rooftune

import (
	"context"
	"errors"
	"reflect"
	"regexp"
	"sync"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/core"
)

// TestSessionConcurrentRunRejected pins the one-Run-at-a-time contract: a
// Run starting while another is in flight fails immediately with
// ErrConcurrentRun, and once the first Run returns the Session is usable
// again. The in-flight Run is held open by a progress callback blocked on
// a channel — back-pressure keeps Run inside its event join until the
// test releases it.
func TestSessionConcurrentRunRejected(t *testing.T) {
	var (
		startedOnce sync.Once
		started     = make(chan struct{})
		release     = make(chan struct{})
	)
	opts := append(tinySessionOptions(),
		WithWorkloads("dgemm"),
		WithProgress(func(Event) {
			startedOnce.Do(func() { close(started) })
			<-release
		}),
	)
	sess, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	type runResult struct {
		res *Result
		err error
	}
	first := make(chan runResult, 1)
	go func() {
		res, err := sess.Run(context.Background())
		first <- runResult{res, err}
	}()
	<-started

	if _, err := sess.Run(context.Background()); !errors.Is(err, ErrConcurrentRun) {
		t.Fatalf("concurrent Run error = %v, want ErrConcurrentRun", err)
	}

	close(release)
	got := <-first
	if got.err != nil {
		t.Fatalf("first Run failed after concurrent rejection: %v", got.err)
	}
	if got.res == nil || len(got.res.Compute) == 0 {
		t.Fatalf("first Run produced no compute points: %+v", got.res)
	}

	// The guard must reset: sequential re-runs keep working.
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatalf("sequential re-Run after concurrent rejection: %v", err)
	}
}

func TestWithHostParallelismValidation(t *testing.T) {
	_, err := New(append(tinySessionOptions(), WithHostParallelism(-1))...)
	if err == nil || !regexp.MustCompile("negative parallelism").MatchString(err.Error()) {
		t.Fatalf("WithHostParallelism(-1) error = %v, want negative-parallelism rejection", err)
	}
}

// TestHostParallelismResultInvariant asserts the budget contract the
// serving tier depends on: with a pinned shard count, capping the host
// parallelism changes nothing about the Result — not the winners, not
// the search-cost accounting — so sessions throttled under a shared
// budget hit the same content-addressed cache entries as unthrottled
// ones.
func TestHostParallelismResultInvariant(t *testing.T) {
	run := func(extra ...Option) *Result {
		t.Helper()
		opts := append(tinySessionOptions(), WithWorkloads("dgemm"), WithCaseShards(1))
		sess, err := New(append(opts, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run()
	for _, par := range []int{1, 2, 16} {
		if got := run(WithHostParallelism(par)); !reflect.DeepEqual(base, got) {
			t.Fatalf("WithHostParallelism(%d) changed the Result:\nbase %+v\ngot  %+v", par, base, got)
		}
	}
}

// fingerprintFor builds a Session and returns its Fingerprint.
func fingerprintFor(t *testing.T, opts ...Option) string {
	t.Helper()
	sess, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := sess.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestFingerprintDeterministic: two independently constructed identical
// sessions share a fingerprint, and the fingerprint is a well-formed hex
// SHA-256 — the property that makes it usable as a content address.
func TestFingerprintDeterministic(t *testing.T) {
	base := append(tinySessionOptions(), WithWorkloads("dgemm"))
	a := fingerprintFor(t, base...)
	b := fingerprintFor(t, base...)
	if a != b {
		t.Fatalf("identical sessions fingerprint differently: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
		t.Fatalf("fingerprint %q is not 64 lowercase hex chars", a)
	}
}

// TestFingerprintSensitivity: every knob that can move a simulated
// Result moves the fingerprint — seed, space, budget, chaining, shard
// count, workload set, and the target system itself.
func TestFingerprintSensitivity(t *testing.T) {
	base := append(tinySessionOptions(), WithWorkloads("dgemm"))
	ref := fingerprintFor(t, base...)

	smallBudget := bench.DefaultBudget().WithFlags(true, true, true)
	smallBudget.Invocations = 2
	variants := map[string][]Option{
		"seed":       append(base, WithSeed(7)),
		"space":      append(base, WithSpace([]core.Dims{{N: 512, M: 512, K: 128}})),
		"budget":     append(base, WithBudget(smallBudget)),
		"chain":      append(base, WithSweepChaining(true)),
		"caseShards": append(base, WithCaseShards(2)),
		"workloads":  append(base, WithWorkloads("dgemm", "triad")),
	}
	for name, opts := range variants {
		if got := fingerprintFor(t, opts...); got == ref {
			t.Errorf("changing %s left the fingerprint unchanged (%s)", name, ref)
		}
	}

	g6148 := fingerprintFor(t, WithSystem("Gold 6148"), WithWorkloads("dgemm"))
	g6132 := fingerprintFor(t, WithSystem("Gold 6132"), WithWorkloads("dgemm"))
	if g6148 == g6132 {
		t.Errorf("different systems share fingerprint %s", g6148)
	}
}

// TestFingerprintScheduleInvariant: knobs that only choose how much
// hardware runs the schedule — never what the schedule computes — leave
// the fingerprint alone, so a throttled daemon still hits cache entries
// written by an idle one.
func TestFingerprintScheduleInvariant(t *testing.T) {
	base := append(tinySessionOptions(), WithWorkloads("dgemm"), WithCaseShards(1))
	ref := fingerprintFor(t, base...)
	for name, opts := range map[string][]Option{
		"WithSerial":          append(base, WithSerial()),
		"WithHostParallelism": append(base, WithHostParallelism(2)),
	} {
		if got := fingerprintFor(t, opts...); got != ref {
			t.Errorf("%s changed the fingerprint: %s -> %s", name, ref, got)
		}
	}
}
