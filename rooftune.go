// Package rooftune builds empirical Roofline models by autotuning the
// benchmarks that measure them, reproducing Tørring, Meyer and Elster,
// "Autotuning Benchmarking Techniques: A Roofline Model Case Study"
// (IPDPS workshops, 2021; arXiv:2103.08716).
//
// Two engines are available behind the same API:
//
//   - Simulated: calibrated performance models of the paper's four Intel
//     Xeon systems (and any user-defined hw.System). Deterministic given
//     a seed; this is what reproduces the paper's tables and figures.
//   - Native: real pure-Go DGEMM and STREAM TRIAD kernels measured with
//     the wall clock, producing a genuine roofline of the host.
//
// The returned Result contains the tuned peak compute and bandwidth
// values, the winning configurations, and a renderable roofline model:
//
//	res, err := rooftune.Simulated("Gold 6148", nil)
//	...
//	fmt.Println(res.Roofline.RenderASCII(72, 20))
package rooftune

import (
	"fmt"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/roofline"
	"rooftune/internal/units"
)

// Options configures a roofline build. The zero value (or nil) means:
// paper defaults for simulated builds, quick defaults for native builds.
type Options struct {
	// Seed drives the simulated engines' noise streams (default 1021).
	Seed uint64
	// Budget is the evaluation budget; defaults to Table I with the
	// paper's best technique (Confidence + Inner + Outer bounds).
	Budget *bench.Budget
	// Space is the DGEMM search space (default: the paper's union space
	// for simulated builds, a laptop-scale space for native builds).
	Space []core.Dims
	// Threads is the native engines' parallelism (default GOMAXPROCS).
	Threads int
	// AssumedLLC is the native build's last-level-cache estimate used to
	// split the TRIAD sweep into cache and DRAM regions (default 32 MiB).
	AssumedLLC units.ByteSize
	// TriadLo/TriadHi bound the TRIAD working-set sweep (default: the
	// paper's 3 KiB .. 768 MiB for simulated builds; 3 KiB .. 256 MiB
	// native).
	TriadLo, TriadHi units.ByteSize
}

func (o *Options) withDefaults(native bool) Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Seed == 0 {
		out.Seed = 1021
	}
	if out.Budget == nil {
		b := bench.DefaultBudget().WithFlags(true, true, true)
		if native {
			b.Invocations = 3
			b.MaxIterations = 30
			b.MaxTime = 2 * time.Second
		}
		out.Budget = &b
	}
	if out.Space == nil {
		if native {
			out.Space = NativeQuickSpace()
		} else {
			out.Space = core.UnionDGEMMSpace()
		}
	}
	if out.AssumedLLC == 0 {
		out.AssumedLLC = 32 * units.MiB
	}
	if out.TriadLo == 0 {
		out.TriadLo = 3 * units.KiB
	}
	if out.TriadHi == 0 {
		if native {
			out.TriadHi = 256 * units.MiB
		} else {
			out.TriadHi = 768 * units.MiB
		}
	}
	return out
}

// NativeQuickSpace is a DGEMM search space sized for interactive native
// runs: large enough to exercise cache blocking, small enough to finish
// in seconds on a laptop.
func NativeQuickSpace() []core.Dims {
	var out []core.Dims
	for _, n := range []int{256, 512, 768, 1024} {
		for _, m := range []int{256, 512, 1024} {
			for _, k := range []int{64, 128, 256} {
				out = append(out, core.Dims{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// ComputePoint is a tuned compute ceiling.
type ComputePoint struct {
	Sockets int
	Dims    core.Dims
	Flops   units.Flops
	// Theoretical is Eq. 9's peak for the configuration (zero for native
	// builds, where no spec is assumed).
	Theoretical units.Flops
}

// MemoryPoint is a tuned bandwidth ceiling.
type MemoryPoint struct {
	Sockets   int
	Region    string // "DRAM", "L3", ... ("cache"/"DRAM" for native)
	Elements  int    // TRIAD vector length at the peak
	Bandwidth units.Bandwidth
	// Theoretical is Eq. 11's peak for DRAM regions (zero otherwise).
	Theoretical units.Bandwidth
}

// Result is a complete tuned roofline characterisation.
type Result struct {
	SystemName string
	Engine     string
	Compute    []ComputePoint
	Memory     []MemoryPoint
	Roofline   *roofline.Model
	// SearchTime is the total tuning cost: virtual seconds for simulated
	// engines, wall-clock for native.
	SearchTime time.Duration
}

// Simulated autotunes DGEMM and TRIAD on the named system's calibrated
// models and assembles the roofline. Known names: "2650v4", "2695v4",
// "Gold 6132", "Gold 6148", "Silver 4110", plus anything registered via
// hw.Register.
func Simulated(systemName string, opt *Options) (*Result, error) {
	sys, err := hw.Get(systemName)
	if err != nil {
		return nil, err
	}
	return SimulatedSystem(sys, opt)
}

// SimulatedSystem is Simulated for an explicit system description.
func SimulatedSystem(sys hw.System, opt *Options) (*Result, error) {
	o := opt.withDefaults(false)
	eng := bench.NewSimEngine(sys, o.Seed)
	res := &Result{SystemName: sys.Name, Engine: eng.Name()}

	socketConfigs := []int{1}
	if sys.Sockets > 1 {
		socketConfigs = append(socketConfigs, sys.Sockets)
	}
	for _, sockets := range socketConfigs {
		cases := make([]bench.Case, len(o.Space))
		for i, d := range o.Space {
			cases[i] = eng.DGEMMCase(d.N, d.M, d.K, sockets)
		}
		tuner := core.NewTuner(eng.Clock, *o.Budget, core.OrderForward)
		r, err := tuner.Run(cases)
		if err != nil {
			return nil, fmt.Errorf("rooftune: DGEMM tuning (%d sockets): %w", sockets, err)
		}
		var d core.Dims
		fmt.Sscanf(r.Best.Key, "dgemm/%d/%dx%dx%d", &sockets, &d.N, &d.M, &d.K)
		res.Compute = append(res.Compute, ComputePoint{
			Sockets:     sockets,
			Dims:        d,
			Flops:       units.Flops(r.BestValue()),
			Theoretical: sys.TheoreticalFlops(sockets),
		})
	}

	grid := units.TriadGridElements(units.WorkingSetGridDense(o.TriadLo, o.TriadHi, 4))
	for _, sockets := range socketConfigs {
		aff := hw.AffinityClose
		if sockets > 1 {
			aff = hw.AffinitySpread
		}
		for _, region := range []struct {
			name     string
			min, max float64 // working-set bounds as multiples of L3
		}{
			{"L3", 0, 0.9},
			{"DRAM", 4, 1e18},
		} {
			l3 := float64(sys.L3Total(sockets))
			l2 := float64(sys.L2PerCore) * float64(sys.Cores(sockets))
			var cases []bench.Case
			var elems []int
			for _, n := range grid {
				w := units.TriadBytes(n)
				if w <= l2 || w < region.min*l3 || w > region.max*l3 {
					continue
				}
				cases = append(cases, eng.TriadCase(n, aff, sockets))
				elems = append(elems, n)
			}
			if len(cases) == 0 {
				continue
			}
			tuner := core.NewTuner(eng.Clock, *o.Budget, core.OrderForward)
			r, err := tuner.Run(cases)
			if err != nil {
				return nil, fmt.Errorf("rooftune: TRIAD tuning (%s, %d sockets): %w", region.name, sockets, err)
			}
			mp := MemoryPoint{
				Sockets:   sockets,
				Region:    region.name,
				Bandwidth: units.Bandwidth(r.BestValue()),
			}
			for i, c := range cases {
				if c.Key() == r.Best.Key {
					mp.Elements = elems[i]
				}
			}
			if region.name == "DRAM" {
				mp.Theoretical = sys.TheoreticalBandwidth(sockets)
			}
			res.Memory = append(res.Memory, mp)
		}
	}
	res.SearchTime = eng.Clock.Now()
	res.Roofline = assembleRoofline(res)
	return res, nil
}

// Native autotunes the real Go kernels on the host machine.
func Native(opt *Options) (*Result, error) {
	o := opt.withDefaults(true)
	eng := bench.NewNativeEngine(o.Threads)
	res := &Result{SystemName: "host", Engine: eng.Name()}

	cases := make([]bench.Case, len(o.Space))
	for i, d := range o.Space {
		cases[i] = eng.DGEMMCase(d.N, d.M, d.K)
	}
	tuner := core.NewTuner(eng.Clock, *o.Budget, core.OrderForward)
	r, err := tuner.Run(cases)
	if err != nil {
		return nil, fmt.Errorf("rooftune: native DGEMM tuning: %w", err)
	}
	var d core.Dims
	fmt.Sscanf(r.Best.Key, "native-dgemm/%dx%dx%d", &d.N, &d.M, &d.K)
	res.Compute = append(res.Compute, ComputePoint{
		Sockets: 1, Dims: d, Flops: units.Flops(r.BestValue()),
	})

	grid := units.TriadGridElements(units.WorkingSetGridDense(o.TriadLo, o.TriadHi, 2))
	for _, region := range []struct {
		name     string
		min, max units.ByteSize
	}{
		{"cache", 0, o.AssumedLLC / 2},
		{"DRAM", o.AssumedLLC * 4, 1 << 62},
	} {
		var cases []bench.Case
		var elems []int
		for _, n := range grid {
			w := units.ByteSize(units.TriadBytes(n))
			if w < region.min || w > region.max {
				continue
			}
			cases = append(cases, eng.TriadCase(n))
			elems = append(elems, n)
		}
		if len(cases) == 0 {
			continue
		}
		tuner := core.NewTuner(eng.Clock, *o.Budget, core.OrderForward)
		r, err := tuner.Run(cases)
		if err != nil {
			return nil, fmt.Errorf("rooftune: native TRIAD tuning (%s): %w", region.name, err)
		}
		mp := MemoryPoint{
			Sockets: 1, Region: region.name,
			Bandwidth: units.Bandwidth(r.BestValue()),
		}
		for i, c := range cases {
			if c.Key() == r.Best.Key {
				mp.Elements = elems[i]
			}
		}
		res.Memory = append(res.Memory, mp)
	}
	res.SearchTime = eng.Clock.Now()
	res.Roofline = assembleRoofline(res)
	return res, nil
}

func assembleRoofline(res *Result) *roofline.Model {
	m := &roofline.Model{Title: fmt.Sprintf("Roofline: %s (%s)", res.SystemName, res.Engine)}
	for _, c := range res.Compute {
		name := fmt.Sprintf("DGEMM peak, %d socket(s)", c.Sockets)
		m.AddCompute(name, c.Flops)
	}
	for _, b := range res.Memory {
		name := fmt.Sprintf("%s, %d socket(s)", b.Region, b.Sockets)
		m.AddMemory(name, b.Bandwidth)
	}
	m.AddPoint("TRIAD", units.TriadIntensity, unitsAttainableTriad(res))
	return m
}

func unitsAttainableTriad(res *Result) units.Flops {
	var best units.Bandwidth
	for _, b := range res.Memory {
		if b.Region == "DRAM" && b.Bandwidth > best {
			best = b.Bandwidth
		}
	}
	return units.Flops(float64(best) * float64(units.TriadIntensity))
}

// Summary renders a human-readable result overview.
func (r *Result) Summary() string {
	out := fmt.Sprintf("%s (engine %s), search time %.2fs\n", r.SystemName, r.Engine, r.SearchTime.Seconds())
	for _, c := range r.Compute {
		out += fmt.Sprintf("  compute %d socket(s): %v at n,m,k=%v", c.Sockets, c.Flops, c.Dims)
		if c.Theoretical > 0 {
			out += fmt.Sprintf(" (%s of theoretical %v)", units.Percent(float64(c.Flops), float64(c.Theoretical)), c.Theoretical)
		}
		out += "\n"
	}
	for _, b := range r.Memory {
		out += fmt.Sprintf("  %-5s %d socket(s): %v at N=%d", b.Region, b.Sockets, b.Bandwidth, b.Elements)
		if b.Theoretical > 0 {
			out += fmt.Sprintf(" (%s of theoretical %v)", units.Percent(float64(b.Bandwidth), float64(b.Theoretical)), b.Theoretical)
		}
		out += "\n"
	}
	return out
}
