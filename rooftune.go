// Package rooftune builds empirical Roofline models by autotuning the
// benchmarks that measure them, reproducing Tørring, Meyer and Elster,
// "Autotuning Benchmarking Techniques: A Roofline Model Case Study"
// (IPDPS workshops, 2021; arXiv:2103.08716).
//
// A build is a Session: New configures it from functional options and
// Run(ctx) executes it, honouring cancellation and streaming live
// progress events if asked:
//
//	sess, err := rooftune.New(rooftune.WithSystem("Gold 6148"))
//	...
//	res, err := sess.Run(ctx)
//	...
//	fmt.Println(res.Roofline.RenderASCII(72, 20))
//
// Two engines are available behind the same API:
//
//   - WithSystem / WithSystemSpec: calibrated performance models of the
//     paper's four Intel Xeon systems (and any user-defined hw.System).
//     Deterministic given a seed; this is what reproduces the paper's
//     tables and figures.
//   - WithNative: real pure-Go DGEMM and STREAM TRIAD kernels measured
//     with the wall clock, producing a genuine roofline of the host.
//
// The benchmarks themselves are pluggable Workloads. A Workload turns
// the session's target and parameters into autotuning sweeps plus the
// Point metadata saying how each winner lands in the Result; DGEMM and
// TRIAD are simply the two built-in registrations, and new benchmark
// families (SpMV, stencils, per-cache-level TRIAD regions) are additive
// packages — RegisterWorkload plus WithWorkloads, no edits here. See the
// Workload type and examples/custom-workload for a complete minimal
// implementation.
//
// The returned Result contains the tuned peak compute and bandwidth
// values, the winning configurations, and a renderable roofline model.
package rooftune

import (
	"fmt"
	"strings"
	"time"

	"rooftune/internal/core"
	"rooftune/internal/roofline"
	"rooftune/internal/units"
)

// NativeQuickSpace is a DGEMM search space sized for interactive native
// runs: large enough to exercise cache blocking, small enough to finish
// in seconds on a laptop.
func NativeQuickSpace() []core.Dims {
	var out []core.Dims
	for _, n := range []int{256, 512, 768, 1024} {
		for _, m := range []int{256, 512, 1024} {
			for _, k := range []int{64, 128, 256} {
				out = append(out, core.Dims{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// ComputePoint is a tuned compute ceiling.
type ComputePoint struct {
	Sockets int
	Dims    core.Dims
	Flops   units.Flops
	// Theoretical is Eq. 9's peak for the configuration (zero for native
	// builds, where no spec is assumed).
	Theoretical units.Flops
}

// MemoryPoint is a tuned bandwidth ceiling.
type MemoryPoint struct {
	Sockets   int
	Region    string // "DRAM", "L3", ... ("cache"/"DRAM" for native)
	Elements  int    // TRIAD vector length at the peak
	Bandwidth units.Bandwidth
	// Theoretical is Eq. 11's peak for DRAM regions (zero otherwise).
	Theoretical units.Bandwidth
}

// Result is a complete tuned roofline characterisation.
type Result struct {
	SystemName string
	Engine     string
	Compute    []ComputePoint
	Memory     []MemoryPoint
	Roofline   *roofline.Model
	// SearchTime is the total tuning cost: virtual seconds for simulated
	// engines, wall-clock for native.
	SearchTime time.Duration
	// Warnings flag results that need a caveat: planned-but-empty sweeps
	// (residency regions whose case list filtered to nothing under the
	// session's bounds, so the roofline is missing their ceiling — each
	// also delivered as an EventRegionEmpty progress event), and sweeps
	// whose every configuration was outer-pruned, where the reported
	// point is a salvaged truncated partial mean rather than a measured
	// winner.
	Warnings []string
}

func assembleRoofline(res *Result) *roofline.Model {
	m := &roofline.Model{Title: fmt.Sprintf("Roofline: %s (%s)", res.SystemName, res.Engine)}
	for _, c := range res.Compute {
		name := fmt.Sprintf("DGEMM peak, %d socket(s)", c.Sockets)
		m.AddCompute(name, c.Flops)
	}
	for _, b := range res.Memory {
		name := fmt.Sprintf("%s, %d socket(s)", b.Region, b.Sockets)
		m.AddMemory(name, b.Bandwidth)
	}
	m.AddPoint("TRIAD", units.TriadIntensity, unitsAttainableTriad(res))
	return m
}

func unitsAttainableTriad(res *Result) units.Flops {
	var best units.Bandwidth
	for _, b := range res.Memory {
		if b.Region == "DRAM" && b.Bandwidth > best {
			best = b.Bandwidth
		}
	}
	return units.Flops(float64(best) * float64(units.TriadIntensity))
}

// Summary renders a human-readable result overview.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (engine %s), search time %.2fs\n", r.SystemName, r.Engine, r.SearchTime.Seconds())
	for _, c := range r.Compute {
		fmt.Fprintf(&sb, "  compute %d socket(s): %v at n,m,k=%v", c.Sockets, c.Flops, c.Dims)
		if c.Theoretical > 0 {
			fmt.Fprintf(&sb, " (%s of theoretical %v)", units.Percent(float64(c.Flops), float64(c.Theoretical)), c.Theoretical)
		}
		sb.WriteByte('\n')
	}
	for _, b := range r.Memory {
		fmt.Fprintf(&sb, "  %-5s %d socket(s): %v at N=%d", b.Region, b.Sockets, b.Bandwidth, b.Elements)
		if b.Theoretical > 0 {
			fmt.Fprintf(&sb, " (%s of theoretical %v)", units.Percent(float64(b.Bandwidth), float64(b.Theoretical)), b.Theoretical)
		}
		sb.WriteByte('\n')
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&sb, "  warning: %s\n", w)
	}
	return sb.String()
}
