// Package rooftune builds empirical Roofline models by autotuning the
// benchmarks that measure them, reproducing Tørring, Meyer and Elster,
// "Autotuning Benchmarking Techniques: A Roofline Model Case Study"
// (IPDPS workshops, 2021; arXiv:2103.08716).
//
// Two engines are available behind the same API:
//
//   - Simulated: calibrated performance models of the paper's four Intel
//     Xeon systems (and any user-defined hw.System). Deterministic given
//     a seed; this is what reproduces the paper's tables and figures.
//   - Native: real pure-Go DGEMM and STREAM TRIAD kernels measured with
//     the wall clock, producing a genuine roofline of the host.
//
// The returned Result contains the tuned peak compute and bandwidth
// values, the winning configurations, and a renderable roofline model:
//
//	res, err := rooftune.Simulated("Gold 6148", nil)
//	...
//	fmt.Println(res.Roofline.RenderASCII(72, 20))
package rooftune

import (
	"fmt"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/roofline"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
)

// Options configures a roofline build. The zero value (or nil) means:
// paper defaults for simulated builds, quick defaults for native builds.
type Options struct {
	// Seed drives the simulated engines' noise streams (default 1021).
	Seed uint64
	// Budget is the evaluation budget; defaults to Table I with the
	// paper's best technique (Confidence + Inner + Outer bounds).
	Budget *bench.Budget
	// Space is the DGEMM search space (default: the paper's union space
	// for simulated builds, a laptop-scale space for native builds).
	Space []core.Dims
	// Threads is the native engines' parallelism (default GOMAXPROCS).
	Threads int
	// AssumedLLC is the native build's last-level-cache estimate used to
	// split the TRIAD sweep into cache and DRAM regions (default 32 MiB).
	AssumedLLC units.ByteSize
	// TriadLo/TriadHi bound the TRIAD working-set sweep (default: the
	// paper's 3 KiB .. 768 MiB for simulated builds; 3 KiB .. 256 MiB
	// native).
	TriadLo, TriadHi units.ByteSize
	// Serial disables the concurrent sweep execution of simulated builds.
	// Every sweep owns its engine, clock and noise streams, so parallel
	// results are bit-identical to serial ones (asserted by
	// TestSimulatedParallelDeterminism); Serial exists for debugging.
	// Native builds are always serial: concurrent wall-clock measurement
	// would contend on the host.
	Serial bool
}

func (o *Options) withDefaults(native bool) Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Seed == 0 {
		out.Seed = 1021
	}
	if out.Budget == nil {
		b := bench.DefaultBudget().WithFlags(true, true, true)
		if native {
			b.Invocations = 3
			b.MaxIterations = 30
			b.MaxTime = 2 * time.Second
		}
		out.Budget = &b
	}
	if out.Space == nil {
		if native {
			out.Space = NativeQuickSpace()
		} else {
			out.Space = core.UnionDGEMMSpace()
		}
	}
	if out.AssumedLLC == 0 {
		out.AssumedLLC = 32 * units.MiB
	}
	if out.TriadLo == 0 {
		out.TriadLo = 3 * units.KiB
	}
	if out.TriadHi == 0 {
		if native {
			out.TriadHi = 256 * units.MiB
		} else {
			out.TriadHi = 768 * units.MiB
		}
	}
	return out
}

// NativeQuickSpace is a DGEMM search space sized for interactive native
// runs: large enough to exercise cache blocking, small enough to finish
// in seconds on a laptop.
func NativeQuickSpace() []core.Dims {
	var out []core.Dims
	for _, n := range []int{256, 512, 768, 1024} {
		for _, m := range []int{256, 512, 1024} {
			for _, k := range []int{64, 128, 256} {
				out = append(out, core.Dims{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// ComputePoint is a tuned compute ceiling.
type ComputePoint struct {
	Sockets int
	Dims    core.Dims
	Flops   units.Flops
	// Theoretical is Eq. 9's peak for the configuration (zero for native
	// builds, where no spec is assumed).
	Theoretical units.Flops
}

// MemoryPoint is a tuned bandwidth ceiling.
type MemoryPoint struct {
	Sockets   int
	Region    string // "DRAM", "L3", ... ("cache"/"DRAM" for native)
	Elements  int    // TRIAD vector length at the peak
	Bandwidth units.Bandwidth
	// Theoretical is Eq. 11's peak for DRAM regions (zero otherwise).
	Theoretical units.Bandwidth
}

// Result is a complete tuned roofline characterisation.
type Result struct {
	SystemName string
	Engine     string
	Compute    []ComputePoint
	Memory     []MemoryPoint
	Roofline   *roofline.Model
	// SearchTime is the total tuning cost: virtual seconds for simulated
	// engines, wall-clock for native.
	SearchTime time.Duration
}

// Simulated autotunes DGEMM and TRIAD on the named system's calibrated
// models and assembles the roofline. Known names: "2650v4", "2695v4",
// "Gold 6132", "Gold 6148", "Silver 4110", plus anything registered via
// hw.Register.
func Simulated(systemName string, opt *Options) (*Result, error) {
	sys, err := hw.Get(systemName)
	if err != nil {
		return nil, err
	}
	return SimulatedSystem(sys, opt)
}

// SimulatedSystem is Simulated for an explicit system description. The
// independent sweeps (socket configurations x residency regions) run
// concurrently, each on its own engine, clock and noise streams; results
// are bit-identical to a serial run (Options.Serial).
func SimulatedSystem(sys hw.System, opt *Options) (*Result, error) {
	o := opt.withDefaults(false)
	runner := &sweep.Runner{Budget: *o.Budget, Order: core.OrderForward, Serial: o.Serial}
	res := &Result{SystemName: sys.Name, Engine: bench.SimEngineName(sys)}
	return assembleResult(res, planSimulated(sys, o), runner)
}

// Native autotunes the real Go kernels on the host machine. Sweeps always
// run serially: concurrent wall-clock measurement would contend on the
// host and corrupt every sample.
func Native(opt *Options) (*Result, error) {
	o := opt.withDefaults(true)
	eng := bench.NewNativeEngine(o.Threads)
	runner := &sweep.Runner{Budget: *o.Budget, Order: core.OrderForward, Serial: true}
	res := &Result{SystemName: "host", Engine: eng.Name()}
	return assembleResult(res, planNative(eng, o), runner)
}

// sweepPlan pairs sweep specs with the metadata needed to turn their
// typed winners into Result points. specs[i] and metas[i] describe the
// same sweep; spec order is Compute-point order then Memory-point order.
type sweepPlan struct {
	specs []sweep.Spec
	metas []pointMeta
}

// pointMeta says how one sweep's outcome lands in the Result.
type pointMeta struct {
	compute   bool // true: ComputePoint; false: MemoryPoint
	sockets   int
	region    string
	theoFlops units.Flops     // Eq. 9 peak (simulated compute sweeps)
	theoBW    units.Bandwidth // Eq. 11 peak (simulated DRAM sweeps)
}

func (p *sweepPlan) add(s sweep.Spec, m pointMeta) {
	p.specs = append(p.specs, s)
	p.metas = append(p.metas, m)
}

// planSimulated builds the simulated build's sweeps. Every sweep gets its
// own engine: the calibrated models derive each sample by hashing
// (seed, configuration, invocation), so splitting the engine changes no
// measurement while making the sweeps schedulable in any order.
func planSimulated(sys hw.System, o Options) *sweepPlan {
	p := &sweepPlan{}
	for _, sockets := range sys.SocketConfigs() {
		eng := bench.NewSimEngine(sys, o.Seed)
		cases := make([]bench.Case, len(o.Space))
		for i, d := range o.Space {
			cases[i] = eng.DGEMMCase(d.N, d.M, d.K, sockets)
		}
		p.add(
			sweep.Spec{Name: fmt.Sprintf("DGEMM (%d sockets)", sockets), Clock: eng.Clock, Cases: cases},
			pointMeta{compute: true, sockets: sockets, theoFlops: sys.TheoreticalFlops(sockets)},
		)
	}

	grid := units.TriadGridElements(units.WorkingSetGridDense(o.TriadLo, o.TriadHi, 4))
	for _, sockets := range sys.SocketConfigs() {
		aff := hw.AffinityClose
		if sockets > 1 {
			aff = hw.AffinitySpread
		}
		for _, region := range []struct {
			name     string
			min, max float64 // working-set bounds as multiples of L3
		}{
			{"L3", 0, 0.9},
			{"DRAM", 4, 1e18},
		} {
			l3 := float64(sys.L3Total(sockets))
			l2 := float64(sys.L2PerCore) * float64(sys.Cores(sockets))
			eng := bench.NewSimEngine(sys, o.Seed)
			var cases []bench.Case
			for _, n := range grid {
				w := units.TriadBytes(n)
				if w <= l2 || w < region.min*l3 || w > region.max*l3 {
					continue
				}
				cases = append(cases, eng.TriadCase(n, aff, sockets))
			}
			if len(cases) == 0 {
				continue
			}
			meta := pointMeta{sockets: sockets, region: region.name}
			if region.name == "DRAM" {
				meta.theoBW = sys.TheoreticalBandwidth(sockets)
			}
			p.add(
				sweep.Spec{Name: fmt.Sprintf("TRIAD %s (%d sockets)", region.name, sockets), Clock: eng.Clock, Cases: cases},
				meta,
			)
		}
	}
	return p
}

// planNative builds the native build's sweeps on one shared engine (the
// host is the engine; there is nothing to split).
func planNative(eng *bench.NativeEngine, o Options) *sweepPlan {
	p := &sweepPlan{}
	cases := make([]bench.Case, len(o.Space))
	for i, d := range o.Space {
		cases[i] = eng.DGEMMCase(d.N, d.M, d.K)
	}
	p.add(
		sweep.Spec{Name: "native DGEMM", Clock: eng.Clock, Cases: cases},
		pointMeta{compute: true, sockets: 1},
	)

	grid := units.TriadGridElements(units.WorkingSetGridDense(o.TriadLo, o.TriadHi, 2))
	for _, region := range []struct {
		name     string
		min, max units.ByteSize
	}{
		{"cache", 0, o.AssumedLLC / 2},
		{"DRAM", o.AssumedLLC * 4, 1 << 62},
	} {
		var cases []bench.Case
		for _, n := range grid {
			w := units.ByteSize(units.TriadBytes(n))
			if w < region.min || w > region.max {
				continue
			}
			cases = append(cases, eng.TriadCase(n))
		}
		if len(cases) == 0 {
			continue
		}
		p.add(
			sweep.Spec{Name: "native TRIAD " + region.name, Clock: eng.Clock, Cases: cases},
			pointMeta{sockets: 1, region: region.name},
		)
	}
	return p
}

// assembleResult runs the plan's sweeps and builds Result points from
// their typed winners. Winning configurations come from bench.Config
// carried on the outcome — no key string is ever parsed, so a key-format
// change can no longer silently zero the reported dimensions.
func assembleResult(res *Result, p *sweepPlan, runner *sweep.Runner) (*Result, error) {
	outs, err := runner.Run(p.specs)
	if err != nil {
		return nil, fmt.Errorf("rooftune: %w", err)
	}
	for i, out := range outs {
		meta := p.metas[i]
		if meta.compute {
			cfg, err := out.DGEMM()
			if err != nil {
				return nil, fmt.Errorf("rooftune: %w", err)
			}
			res.Compute = append(res.Compute, ComputePoint{
				Sockets:     meta.sockets,
				Dims:        core.ConfigDims(cfg),
				Flops:       units.Flops(out.BestValue()),
				Theoretical: meta.theoFlops,
			})
		} else {
			cfg, err := out.Triad()
			if err != nil {
				return nil, fmt.Errorf("rooftune: %w", err)
			}
			res.Memory = append(res.Memory, MemoryPoint{
				Sockets:     meta.sockets,
				Region:      meta.region,
				Elements:    cfg.Elements,
				Bandwidth:   units.Bandwidth(out.BestValue()),
				Theoretical: meta.theoBW,
			})
		}
		res.SearchTime += out.Result.Elapsed
	}
	res.Roofline = assembleRoofline(res)
	return res, nil
}

func assembleRoofline(res *Result) *roofline.Model {
	m := &roofline.Model{Title: fmt.Sprintf("Roofline: %s (%s)", res.SystemName, res.Engine)}
	for _, c := range res.Compute {
		name := fmt.Sprintf("DGEMM peak, %d socket(s)", c.Sockets)
		m.AddCompute(name, c.Flops)
	}
	for _, b := range res.Memory {
		name := fmt.Sprintf("%s, %d socket(s)", b.Region, b.Sockets)
		m.AddMemory(name, b.Bandwidth)
	}
	m.AddPoint("TRIAD", units.TriadIntensity, unitsAttainableTriad(res))
	return m
}

func unitsAttainableTriad(res *Result) units.Flops {
	var best units.Bandwidth
	for _, b := range res.Memory {
		if b.Region == "DRAM" && b.Bandwidth > best {
			best = b.Bandwidth
		}
	}
	return units.Flops(float64(best) * float64(units.TriadIntensity))
}

// Summary renders a human-readable result overview.
func (r *Result) Summary() string {
	out := fmt.Sprintf("%s (engine %s), search time %.2fs\n", r.SystemName, r.Engine, r.SearchTime.Seconds())
	for _, c := range r.Compute {
		out += fmt.Sprintf("  compute %d socket(s): %v at n,m,k=%v", c.Sockets, c.Flops, c.Dims)
		if c.Theoretical > 0 {
			out += fmt.Sprintf(" (%s of theoretical %v)", units.Percent(float64(c.Flops), float64(c.Theoretical)), c.Theoretical)
		}
		out += "\n"
	}
	for _, b := range r.Memory {
		out += fmt.Sprintf("  %-5s %d socket(s): %v at N=%d", b.Region, b.Sockets, b.Bandwidth, b.Elements)
		if b.Theoretical > 0 {
			out += fmt.Sprintf(" (%s of theoretical %v)", units.Percent(float64(b.Bandwidth), float64(b.Theoretical)), b.Theoretical)
		}
		out += "\n"
	}
	return out
}
