// Package rooftune builds empirical Roofline models by autotuning the
// benchmarks that measure them, reproducing Tørring, Meyer and Elster,
// "Autotuning Benchmarking Techniques: A Roofline Model Case Study"
// (IPDPS workshops, 2021; arXiv:2103.08716).
//
// A build is a Session: New configures it from functional options and
// Run(ctx) executes it, honouring cancellation and streaming live
// progress events if asked:
//
//	sess, err := rooftune.New(rooftune.WithSystem("Gold 6148"))
//	...
//	res, err := sess.Run(ctx)
//	...
//	fmt.Println(res.Roofline.RenderASCII(72, 20))
//
// Two engines are available behind the same API:
//
//   - WithSystem / WithSystemSpec: calibrated performance models of the
//     paper's four Intel Xeon systems (and any user-defined hw.System).
//     Deterministic given a seed; this is what reproduces the paper's
//     tables and figures.
//   - WithNative: real pure-Go DGEMM and STREAM TRIAD kernels measured
//     with the wall clock, producing a genuine roofline of the host.
//
// The benchmarks themselves are pluggable Workloads. A Workload turns
// the session's target and parameters into a plan graph: autotuning
// sweeps under stable IDs, each paired with the Point metadata saying
// how its winner lands in the Result, optionally chained to another
// same-metric sweep via a SeedFrom edge. Independent sweeps run
// concurrently; under WithSweepChaining a finished dependency's winner
// pre-seeds its dependents' incumbent bounds so stop condition 4 prunes
// from the very first case, without changing any winner. Four workloads
// are built in: "dgemm" (compute ceilings), "triad" (bandwidth ceilings
// — the paper's L3/DRAM pair by default, or per-cache-level L1/L2/L3/
// DRAM ceilings via WithTriadLevels, chained in increasing-bandwidth
// order), and the §VII extensions "spmv" and "stencil", whose tuned
// winners land as application points at their own operational
// intensities in the memory-bound region between TRIAD and DGEMM. New
// benchmark families are additive packages — RegisterWorkload plus
// WithWorkloads, no edits here. See the Workload type and
// examples/custom-workload for a complete minimal implementation, with
// internal/workloads/spmv as the full-scale reference and
// internal/workloads/triad for a chained multi-sweep plan.
//
// The returned Result contains the tuned peak compute and bandwidth
// values, the winning configurations, and a renderable roofline model.
package rooftune

import (
	"fmt"
	"strings"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/roofline"
	"rooftune/internal/units"
)

// NativeQuickSpace is a DGEMM search space sized for interactive native
// runs: large enough to exercise cache blocking, small enough to finish
// in seconds on a laptop.
func NativeQuickSpace() []core.Dims {
	var out []core.Dims
	for _, n := range []int{256, 512, 768, 1024} {
		for _, m := range []int{256, 512, 1024} {
			for _, k := range []int{64, 128, 256} {
				out = append(out, core.Dims{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// ComputePoint is a tuned FLOP/s-metered winner. DGEMM's points are
// compute ceilings; SpMV's and the stencil's carry their operational
// intensity and land on the roofline as application points in the
// memory-bound region between TRIAD and DGEMM.
type ComputePoint struct {
	// Label names the benchmark family: "DGEMM", "SpMV", "stencil" (or a
	// registered custom workload's Point.Label).
	Label   string
	Sockets int
	// Dims is the winning matrix shape for DGEMM points (zero value for
	// other families, whose identity is Config).
	Dims core.Dims
	// Config is the winner's full typed identity (bench.DGEMMConfig,
	// bench.SpMVConfig, bench.StencilConfig).
	Config bench.Config
	// Desc is the winner's human-readable parameter description, e.g.
	// "n=262144 nnz/row=16 chunk=512 sockets=1".
	Desc  string
	Flops units.Flops
	// Intensity is the kernel's operational intensity; nonzero marks the
	// point as a roofline application point rather than a compute
	// ceiling.
	Intensity units.Intensity
	// Theoretical is Eq. 9's peak for the configuration (zero for native
	// builds, where no spec is assumed, and for application points).
	Theoretical units.Flops
}

// MemoryPoint is a tuned bandwidth ceiling.
type MemoryPoint struct {
	Sockets int
	// Region names the residency region the ceiling was measured in:
	// any of "L1", "L2", "L3", "DRAM" on simulated systems (the levels
	// WithTriadLevels selects; L3+DRAM by default), "cache"/"DRAM" on
	// native builds, or a custom workload's region label.
	Region    string
	Elements  int // TRIAD vector length at the peak
	Bandwidth units.Bandwidth
	// Theoretical is Eq. 11's peak for DRAM regions (zero otherwise).
	Theoretical units.Bandwidth
}

// Result is a complete tuned roofline characterisation.
type Result struct {
	SystemName string
	Engine     string
	Compute    []ComputePoint
	Memory     []MemoryPoint
	Roofline   *roofline.Model
	// SearchTime is the total tuning cost: virtual seconds for simulated
	// engines, wall-clock for native.
	SearchTime time.Duration
	// Warnings flag results that need a caveat: planned-but-empty sweeps
	// (residency regions whose case list filtered to nothing under the
	// session's bounds, so the roofline is missing their ceiling — each
	// also delivered as an EventRegionEmpty progress event), and sweeps
	// whose every configuration was outer-pruned, where the reported
	// point is a salvaged truncated partial mean rather than a measured
	// winner.
	Warnings []string
}

func assembleRoofline(res *Result) *roofline.Model {
	m := &roofline.Model{Title: fmt.Sprintf("Roofline: %s (%s)", res.SystemName, res.Engine)}
	for _, c := range res.Compute {
		label := c.Label
		if label == "" {
			label = "DGEMM"
		}
		if c.Intensity > 0 {
			// An intensity-carrying winner is a measured kernel at its own
			// position on the intensity axis (SpMV, stencil), not a
			// horizontal roof: adding it as a ceiling would clamp the whole
			// model to a memory-bound kernel's throughput.
			m.AddPoint(fmt.Sprintf("%s, %d socket(s)", label, c.Sockets), c.Intensity, c.Flops)
			continue
		}
		m.AddCompute(fmt.Sprintf("%s peak, %d socket(s)", label, c.Sockets), c.Flops)
	}
	for _, b := range res.Memory {
		name := fmt.Sprintf("%s, %d socket(s)", b.Region, b.Sockets)
		m.AddMemory(name, b.Bandwidth)
	}
	// The TRIAD application point needs a measured DRAM bandwidth; a
	// session that ran no memory sweeps must not pin a zero-FLOP/s point
	// to the graph (it would stretch the log Y-axis to nothing).
	if triad := unitsAttainableTriad(res); triad > 0 {
		m.AddPoint("TRIAD", units.TriadIntensity, triad)
	}
	return m
}

func unitsAttainableTriad(res *Result) units.Flops {
	var best units.Bandwidth
	for _, b := range res.Memory {
		if b.Region == "DRAM" && b.Bandwidth > best {
			best = b.Bandwidth
		}
	}
	return units.Flops(float64(best) * float64(units.TriadIntensity))
}

// Summary renders a human-readable result overview.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (engine %s), search time %.2fs\n", r.SystemName, r.Engine, r.SearchTime.Seconds())
	for _, c := range r.Compute {
		label := c.Label
		if label == "" {
			label = "compute"
		}
		at := c.Desc
		if c.Dims != (core.Dims{}) {
			// DGEMM winners keep the paper's Table V notation.
			at = fmt.Sprintf("n,m,k=%v", c.Dims)
		}
		fmt.Fprintf(&sb, "  %-7s %d socket(s): %v at %s", label, c.Sockets, c.Flops, at)
		if c.Intensity > 0 {
			fmt.Fprintf(&sb, " (I=%v)", c.Intensity)
		}
		if c.Theoretical > 0 {
			fmt.Fprintf(&sb, " (%s of theoretical %v)", units.Percent(float64(c.Flops), float64(c.Theoretical)), c.Theoretical)
		}
		sb.WriteByte('\n')
	}
	for _, b := range r.Memory {
		fmt.Fprintf(&sb, "  %-5s %d socket(s): %v at N=%d", b.Region, b.Sockets, b.Bandwidth, b.Elements)
		if b.Theoretical > 0 {
			fmt.Fprintf(&sb, " (%s of theoretical %v)", units.Percent(float64(b.Bandwidth), float64(b.Theoretical)), b.Theoretical)
		}
		sb.WriteByte('\n')
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&sb, "  warning: %s\n", w)
	}
	return sb.String()
}
