// Package servev1 is the roofserved daemon's versioned wire contract:
// the request, response and error shapes that cross the HTTP boundary,
// extracted from the serving tier so that many tuner frontends can
// compile against one stable schema.
//
// The package is deliberately stdlib-only and carries no behaviour
// beyond JSON round-tripping and request parsing. Everything in it is
// contract: the exported structs' field census and the State / ErrorCode
// enumerations are pinned to the committed golden api/serve_v1.txt by
// the wirecompat analyzer, so removing or retyping anything here fails
// CI the same way a rooftune/result/v1 schema break does. Additions are
// allowed but must be declared by regenerating the golden with
// rooflint -write-goldens.
//
// The campaign's Result payload is NOT defined here: a done JobStatus
// embeds the rooftune/result/v1 bytes verbatim (json.RawMessage), which
// is what keeps cached responses byte-identical.
package servev1

import (
	"encoding/json"
	"fmt"
	"io"
)

// Headers the daemon sets (responses) or reads (requests). They are
// wire contract: clients key cache assertions and fair queuing on them.
const (
	// CacheHeader reports whether a response was served from the
	// content-addressed cache ("hit") or freshly measured ("miss").
	CacheHeader = "X-Roofserve-Cache"
	// FingerprintHeader carries the campaign's content address on every
	// tuning response.
	FingerprintHeader = "X-Roofserve-Fingerprint"
	// JobHeader names the job that produced (or is producing) a response.
	JobHeader = "X-Roofserve-Job"
	// ClientHeader identifies the submitting client for per-client fair
	// queuing. Unset, the daemon falls back to the connection's remote
	// address.
	ClientHeader = "X-Roofserve-Client"
)

// DimsSpec is one DGEMM search-space point on the wire.
type DimsSpec struct {
	N int `json:"n"`
	M int `json:"m"`
	K int `json:"k"`
}

// BudgetSpec overrides parts of the default evaluation budget (Table I
// with the paper's best technique). Zero-valued fields keep defaults;
// the flag pointers distinguish "unset" from an explicit false.
type BudgetSpec struct {
	Invocations   int   `json:"invocations,omitempty"`
	MaxIterations int   `json:"maxIterations,omitempty"`
	MaxTimeMs     int64 `json:"maxTimeMs,omitempty"`
	Confidence    *bool `json:"confidence,omitempty"`
	InnerBound    *bool `json:"innerBound,omitempty"`
	OuterBound    *bool `json:"outerBound,omitempty"`
	MinCount      int   `json:"minCount,omitempty"`
}

// Campaign is the wire form of a tuning request: which simulated system
// to characterise, with which workloads, under which parameters. Every
// field except System is optional and defaults exactly as the
// corresponding rooftune option does, so an empty override set means
// "the library's default campaign for this system".
type Campaign struct {
	// System names the simulated target (hw.Get). Required: the daemon
	// serves simulated campaigns only.
	System string `json:"system"`
	// Workloads selects registered workloads, default ["dgemm","triad"].
	Workloads []string `json:"workloads,omitempty"`
	// Seed drives the simulated noise streams (default 1021, the paper
	// seed).
	Seed uint64 `json:"seed,omitempty"`
	// Space overrides the DGEMM search space.
	Space []DimsSpec `json:"space,omitempty"`
	// Budget overrides parts of the evaluation budget.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// TriadLoBytes / TriadHiBytes bound the TRIAD working-set sweep.
	TriadLoBytes int64 `json:"triadLoBytes,omitempty"`
	TriadHiBytes int64 `json:"triadHiBytes,omitempty"`
	// TriadLevels selects cache-residency regions (subsets of
	// L1/L2/L3/DRAM).
	TriadLevels []string `json:"triadLevels,omitempty"`
	// Chain enables cross-sweep incumbent chaining (WithSweepChaining).
	Chain bool `json:"chain,omitempty"`
	// SpMV / stencil shapes.
	SpMVN         int `json:"spmvN,omitempty"`
	SpMVNNZPerRow int `json:"spmvNNZPerRow,omitempty"`
	StencilNX     int `json:"stencilNX,omitempty"`
	StencilNY     int `json:"stencilNY,omitempty"`
	// Serial forces serial sweep execution. Results are bit-identical
	// either way; it exists so SSE consumers get a deterministic event
	// order, not just a deterministic Result.
	Serial bool `json:"serial,omitempty"`
}

// ParseCampaign decodes a campaign, rejecting unknown fields — a typoed
// knob must fail the request, not silently run the default campaign and
// cache it under the wrong intent.
func ParseCampaign(r io.Reader) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("serve: parse campaign: %w", err)
	}
	if dec.More() {
		return c, fmt.Errorf("serve: parse campaign: trailing data after the campaign object")
	}
	return c, nil
}

// State is a job's lifecycle phase as serialized on the wire.
type State string

// Job lifecycle states. StateDone, StateFailed and StateShed are
// terminal. Removing a value is a breaking change (clients switch on
// them); the set is pinned in the api/serve_v1.txt enum section.
const (
	// StateQueued: admitted but waiting for a run slot.
	StateQueued State = "queued"
	// StateRunning: holding a slot, executing the campaign.
	StateRunning State = "running"
	// StateDone: completed; the status carries the Result bytes.
	StateDone State = "done"
	// StateFailed: errored or cancelled; the status carries the message.
	StateFailed State = "failed"
	// StateShed: refused by admission control before acquiring a slot;
	// resubmit after the advertised retry-after delay.
	StateShed State = "shed"
)

// Terminal reports whether the state is final — no further transitions,
// no further events.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateShed
}

// JobStatus is the wire form of a job handle: the response to
// POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	// ID is the registry-assigned handle clients poll.
	ID string `json:"id"`
	// Fingerprint is the campaign's content address — the cache key its
	// result is stored under.
	Fingerprint string `json:"fingerprint"`
	// State is the lifecycle phase at snapshot time.
	State State `json:"state"`
	// Cached reports that the result bytes came from the
	// content-addressed cache rather than a fresh measurement.
	Cached bool `json:"cached,omitempty"`
	// Events counts the progress events recorded so far.
	Events int `json:"events"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// RetryAfterSeconds, on a shed job, is the daemon's resubmission
	// hint.
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
	// Result holds the rooftune/result/v1 bytes verbatim once done.
	Result json.RawMessage `json:"result,omitempty"`
}

// ErrorCode classifies a daemon error for programmatic handling; the
// human-readable message may change freely, the code may not.
type ErrorCode string

// Error codes. The set is pinned in the api/serve_v1.txt enum section;
// removing one breaks client error dispatch.
const (
	// CodeBadCampaign: the campaign failed to parse or validate (400).
	CodeBadCampaign ErrorCode = "bad_campaign"
	// CodeNotFound: no job with the requested ID (404).
	CodeNotFound ErrorCode = "not_found"
	// CodeOverloaded: admission control shed the request; retry after
	// the advertised delay (429).
	CodeOverloaded ErrorCode = "overloaded"
	// CodeJobFailed: the campaign ran and failed (500).
	CodeJobFailed ErrorCode = "job_failed"
	// CodeClientClosed: the client disconnected before the answer (499).
	CodeClientClosed ErrorCode = "client_closed"
	// CodeInternal: anything else that is the daemon's fault (500).
	CodeInternal ErrorCode = "internal"
)

// Error is the structured error body. It implements error so servers
// and clients can pass it around as one.
type Error struct {
	// Code is the stable, machine-readable classification.
	Code ErrorCode `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// RetryAfterSeconds, when non-zero, tells the client when a retry
	// may succeed (mirrors the Retry-After header on 429 responses).
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

// Error renders the code and message.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the top-level error response body: every non-2xx
// daemon response decodes into it.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}
