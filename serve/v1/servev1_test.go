package servev1

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func boolPtr(b bool) *bool { return &b }

// TestCampaignRoundTrip: a fully-populated campaign survives a JSON
// round trip exactly, and its rendering parses back through the strict
// ParseCampaign path.
func TestCampaignRoundTrip(t *testing.T) {
	in := Campaign{
		System:    "Gold 6148",
		Workloads: []string{"dgemm", "triad", "spmv"},
		Seed:      99,
		Space:     []DimsSpec{{N: 256, M: 256, K: 128}, {N: 512, M: 512, K: 512}},
		Budget: &BudgetSpec{
			Invocations:   5,
			MaxIterations: 100,
			MaxTimeMs:     2000,
			Confidence:    boolPtr(true),
			InnerBound:    boolPtr(false),
			MinCount:      3,
		},
		TriadLoBytes:  1 << 14,
		TriadHiBytes:  1 << 26,
		TriadLevels:   []string{"L3", "DRAM"},
		Chain:         true,
		SpMVN:         4096,
		SpMVNNZPerRow: 16,
		StencilNX:     512,
		StencilNY:     512,
		Serial:        true,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseCampaign(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("campaign round trip:\n in: %+v\nout: %+v", in, out)
	}
}

// TestCampaignOmitsDefaults: zero-valued optional fields stay off the
// wire, so fingerprint-relevant renderings do not change when a new
// optional field is added.
func TestCampaignOmitsDefaults(t *testing.T) {
	data, err := json.Marshal(Campaign{System: "2650v4"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), `{"system":"2650v4"}`; got != want {
		t.Fatalf("minimal campaign rendering = %s, want %s", got, want)
	}
}

func TestParseCampaignRejectsUnknownFields(t *testing.T) {
	_, err := ParseCampaign(strings.NewReader(`{"system": "Gold 6148", "seeed": 7}`))
	if err == nil {
		t.Fatal("typoed field accepted")
	}
	if !strings.Contains(err.Error(), "parse campaign") {
		t.Fatalf("error %q lacks the parse-campaign prefix", err)
	}
}

func TestParseCampaignRejectsTrailingData(t *testing.T) {
	if _, err := ParseCampaign(strings.NewReader(`{"system": "a"} {"system": "b"}`)); err == nil {
		t.Fatal("trailing object accepted")
	}
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued:  false,
		StateRunning: false,
		StateDone:    true,
		StateFailed:  true,
		StateShed:    true,
	} {
		if got := st.Terminal(); got != want {
			t.Errorf("State(%q).Terminal() = %v, want %v", st, got, want)
		}
	}
}

// TestJobStatusRoundTrip: the Result bytes pass through as raw JSON,
// verbatim — the byte-identity guarantee depends on it.
func TestJobStatusRoundTrip(t *testing.T) {
	raw := json.RawMessage(`{"schema":"rooftune/result/v1","points":[{"name":"p","value":1.5}]}`)
	in := JobStatus{
		ID:          "j-7",
		Fingerprint: "abc123",
		State:       StateDone,
		Cached:      true,
		Events:      42,
		Result:      raw,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out JobStatus
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("status round trip:\n in: %+v\nout: %+v", in, out)
	}
	if string(out.Result) != string(raw) {
		t.Fatalf("result bytes not verbatim: %s", out.Result)
	}
}

// TestErrorEnvelope: the envelope decodes to a usable error value with
// the stable code and the retry hint.
func TestErrorEnvelope(t *testing.T) {
	body := `{"error":{"code":"overloaded","message":"admission refused","retryAfterSeconds":3}}`
	var env ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeOverloaded || env.Error.RetryAfterSeconds != 3 {
		t.Fatalf("decoded envelope: %+v", env.Error)
	}
	var e error = &env.Error
	if got, want := e.Error(), "overloaded: admission refused"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}
