package rooftune

import (
	"rooftune/internal/workload"

	// The built-in workloads register themselves ("dgemm", "triad",
	// "spmv", "stencil") so every Session can name them without further
	// imports.
	_ "rooftune/internal/workloads/dgemm"
	_ "rooftune/internal/workloads/spmv"
	_ "rooftune/internal/workloads/stencil"
	_ "rooftune/internal/workloads/triad"
)

// The workload contract lives in internal/workload so that workload
// implementations never import this package (the root registers the
// built-ins — importing back would cycle). The aliases below make the
// internal types and the public ones a single identity: a
// workload.Workload IS a rooftune.Workload.

// Workload produces the autotuning sweeps of one benchmark family; see
// the package documentation and examples/custom-workload. Implementations
// plug into sessions via RegisterWorkload and WithWorkloads.
type Workload = workload.Workload

// Target identifies what a Workload plans sweeps for: a simulated system
// or the native host.
type Target = workload.Target

// Params are the session's resolved tuning parameters, passed to every
// Workload's Plan.
type Params = workload.Params

// Point says how one sweep's winning outcome lands in the Result — as a
// ComputePoint or a MemoryPoint.
type Point = workload.Point

// PlannedSweep pairs one sweep spec with the Point its winner becomes,
// under a stable plan-graph ID and an optional SeedFrom chain edge to an
// earlier same-metric sweep (honoured by WithSweepChaining). Build them
// with Plan.Add and Plan.Chain.
type PlannedSweep = workload.Planned

// Plan is a Workload's full contribution to a session run: its plan-graph
// sweeps plus warnings for any region that filtered to zero cases.
type Plan = workload.Plan

// RegisterWorkload adds a workload to the global registry under its
// Name, making it selectable with WithWorkloads. Registering a name twice
// is an error.
func RegisterWorkload(w Workload) error { return workload.Register(w) }

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string { return workload.Names() }
