package rooftune

import (
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/lint"
	"rooftune/internal/lint/configsum"
	"rooftune/internal/sweep"
)

// configRoundTrips is the table of every bench.Config variant and how
// its sweep winner must land in the Result. TestConfigVariantsExhaustive
// counts the variants declared in internal/bench and fails when this
// table falls behind — so a new variant without result-assembly support
// fails a test, not a user.
var configRoundTrips = []struct {
	name  string
	cfg   bench.Config
	point Point
	check func(t *testing.T, res *Result)
}{
	{
		name:  "DGEMMConfig",
		cfg:   bench.DGEMMConfig{N: 1000, M: 4096, K: 128, Sockets: 1},
		point: Point{Compute: true, Sockets: 1},
		check: func(t *testing.T, res *Result) {
			c := res.Compute[0]
			if c.Label != "DGEMM" {
				t.Fatalf("label = %q", c.Label)
			}
			if c.Dims != (core.Dims{N: 1000, M: 4096, K: 128}) {
				t.Fatalf("dims = %v", c.Dims)
			}
			if cfg, ok := c.Config.(bench.DGEMMConfig); !ok || cfg.N != 1000 {
				t.Fatalf("config = %#v", c.Config)
			}
		},
	},
	{
		name:  "TriadConfig",
		cfg:   bench.TriadConfig{Elements: 1 << 20, Sockets: 2},
		point: Point{Sockets: 2, Region: "DRAM"},
		check: func(t *testing.T, res *Result) {
			m := res.Memory[0]
			if m.Elements != 1<<20 || m.Region != "DRAM" || m.Sockets != 2 {
				t.Fatalf("memory point = %+v", m)
			}
		},
	},
	{
		name:  "SpMVConfig",
		cfg:   bench.SpMVConfig{N: 1 << 18, NNZPerRow: 16, ChunkRows: 512, Sockets: 1},
		point: Point{Compute: true, Label: "SpMV", Sockets: 1, Intensity: 0.155},
		check: func(t *testing.T, res *Result) {
			c := res.Compute[0]
			if c.Label != "SpMV" || c.Intensity != 0.155 {
				t.Fatalf("compute point = %+v", c)
			}
			if c.Dims != (core.Dims{}) {
				t.Fatalf("SpMV point carries DGEMM dims %v", c.Dims)
			}
			cfg, ok := c.Config.(bench.SpMVConfig)
			if !ok || cfg.ChunkRows != 512 || cfg.NNZPerRow != 16 {
				t.Fatalf("config = %#v", c.Config)
			}
		},
	},
	{
		name:  "StencilConfig",
		cfg:   bench.StencilConfig{NX: 2048, NY: 2048, TileX: 1024, TileY: 8, Sockets: 1},
		point: Point{Compute: true, Label: "stencil", Sockets: 1, Intensity: 0.25},
		check: func(t *testing.T, res *Result) {
			c := res.Compute[0]
			if c.Label != "stencil" || c.Intensity != 0.25 {
				t.Fatalf("compute point = %+v", c)
			}
			cfg, ok := c.Config.(bench.StencilConfig)
			if !ok || cfg.TileX != 1024 || cfg.TileY != 8 {
				t.Fatalf("config = %#v", c.Config)
			}
		},
	},
}

// outcomeFor fakes one finished sweep whose winner carries cfg.
func outcomeFor(cfg bench.Config, metric bench.Metric) sweep.Outcome {
	best := &bench.Outcome{
		Key:      "fake",
		Describe: "fake winner",
		Metric:   metric,
		Config:   cfg,
		Mean:     42e9,
	}
	return sweep.Outcome{
		Name: "fake sweep",
		Result: &core.Result{
			Best:    best,
			All:     []*bench.Outcome{best},
			Elapsed: time.Second,
		},
		Best: cfg,
	}
}

// TestConfigRoundTrip drives every variant through the same result
// assembly Session.Run uses and checks the winner's typed identity
// survives into the landed point.
func TestConfigRoundTrip(t *testing.T) {
	for _, tc := range configRoundTrips {
		t.Run(tc.name, func(t *testing.T) {
			metric := bench.MetricBandwidth
			if tc.point.Compute {
				metric = bench.MetricFlops
			}
			res, err := assembleResult(
				&Result{SystemName: "demo", Engine: "fake"},
				[]sweep.Outcome{outcomeFor(tc.cfg, metric)},
				[]Point{tc.point},
			)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Compute) + len(res.Memory); got != 1 {
				t.Fatalf("landed %d points, want 1", got)
			}
			if res.SearchTime != time.Second {
				t.Fatalf("search time = %v", res.SearchTime)
			}
			tc.check(t, res)
		})
	}
}

// TestConfigVariantUnsupported pins the failure mode: a config the
// assembly does not know must surface as an error naming the type, not
// land silently mislabelled.
func TestConfigVariantUnsupported(t *testing.T) {
	_, err := assembleResult(
		&Result{},
		[]sweep.Outcome{outcomeFor(unknownConfig{}, bench.MetricFlops)},
		[]Point{{Compute: true, Sockets: 1}},
	)
	if err == nil {
		t.Fatal("unknown compute config must fail assembly")
	}
}

type unknownConfig struct{ bench.DGEMMConfig }

// TestConfigVariantsExhaustive type-checks internal/bench through the
// rooflint loader and takes the bench.Config variant census from the
// configsum analyzer — the same census that enforces exhaustive type
// switches tree-wide. Every variant must appear in configRoundTrips:
// adding a fifth variant without teaching the result assembly — and
// this table — about it fails here instead of erroring in a user's
// session.
func TestConfigVariantsExhaustive(t *testing.T) {
	pkgs, err := lint.Load(".", "./internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want exactly internal/bench", len(pkgs))
	}
	variants, err := configsum.VariantNames(pkgs[0].Types)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, tc := range configRoundTrips {
		covered[tc.name] = true
	}
	for _, name := range variants {
		if !covered[name] {
			t.Errorf("bench.Config variant %s has no round-trip coverage: add it to configRoundTrips and to assembleResult", name)
		}
	}
	declared := map[string]bool{}
	for _, name := range variants {
		declared[name] = true
	}
	for name := range covered {
		if !declared[name] {
			t.Errorf("round-trip table covers %s, which internal/bench no longer declares", name)
		}
	}
}
