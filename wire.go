package rooftune

import (
	"encoding/json"
	"fmt"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

// resultWireSchema versions Result's JSON encoding. Decoders reject any
// other value: a serving tier and its clients must agree on the schema
// byte for byte, and a silent best-effort decode of a future schema
// would surface as subtly wrong numbers rather than an error.
const resultWireSchema = "rooftune/result/v1"

// computePointWire mirrors ComputePoint field for field. Throughput,
// intensity and durations are float64/int64 in JSON, which round-trips
// them exactly — the serving tier's byte-identity guarantee rests on it.
type computePointWire struct {
	Label       string          `json:"label,omitempty"`
	Sockets     int             `json:"sockets"`
	Dims        *dimsWire       `json:"dims,omitempty"`
	Config      json.RawMessage `json:"config,omitempty"`
	Desc        string          `json:"desc,omitempty"`
	Flops       float64         `json:"flops"`
	Intensity   float64         `json:"intensity,omitempty"`
	Theoretical float64         `json:"theoretical,omitempty"`
}

type dimsWire struct {
	N int `json:"n"`
	M int `json:"m"`
	K int `json:"k"`
}

type memoryPointWire struct {
	Sockets     int     `json:"sockets"`
	Region      string  `json:"region"`
	Elements    int     `json:"elements"`
	Bandwidth   float64 `json:"bandwidth"`
	Theoretical float64 `json:"theoretical,omitempty"`
}

// resultWire is Result's complete wire form. Roofline is deliberately
// absent: the model is a pure function of the points (assembleRoofline),
// so the decoder rebuilds it instead of trusting the sender — a tampered
// or stale serialized model can never disagree with its own points.
type resultWire struct {
	Schema     string             `json:"schema"`
	SystemName string             `json:"systemName"`
	Engine     string             `json:"engine"`
	Compute    []computePointWire `json:"compute,omitempty"`
	Memory     []memoryPointWire  `json:"memory,omitempty"`
	SearchNs   int64              `json:"searchNs"`
	Warnings   []string           `json:"warnings,omitempty"`
}

// MarshalJSON encodes the Result under the versioned v1 wire schema.
// The Roofline model is not serialized — decoders rebuild it from the
// points — and the typed winning configurations travel through
// bench.Config's own variant-tagged encoding, so every config the sum
// type admits survives the round trip.
func (r Result) MarshalJSON() ([]byte, error) {
	w := resultWire{
		Schema:     resultWireSchema,
		SystemName: r.SystemName,
		Engine:     r.Engine,
		SearchNs:   int64(r.SearchTime),
		Warnings:   r.Warnings,
	}
	for _, c := range r.Compute {
		cw := computePointWire{
			Label:       c.Label,
			Sockets:     c.Sockets,
			Desc:        c.Desc,
			Flops:       float64(c.Flops),
			Intensity:   float64(c.Intensity),
			Theoretical: float64(c.Theoretical),
		}
		if c.Dims != (core.Dims{}) {
			cw.Dims = &dimsWire{N: c.Dims.N, M: c.Dims.M, K: c.Dims.K}
		}
		if c.Config != nil {
			raw, err := bench.MarshalConfig(c.Config)
			if err != nil {
				return nil, fmt.Errorf("rooftune: marshal Result: compute point %q: %w", c.Label, err)
			}
			cw.Config = raw
		}
		w.Compute = append(w.Compute, cw)
	}
	for _, m := range r.Memory {
		w.Memory = append(w.Memory, memoryPointWire{
			Sockets:     m.Sockets,
			Region:      m.Region,
			Elements:    m.Elements,
			Bandwidth:   float64(m.Bandwidth),
			Theoretical: float64(m.Theoretical),
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a v1-schema Result and rebuilds the Roofline
// model from the decoded points. Any other schema string is an error,
// including the empty one.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("rooftune: unmarshal Result: %w", err)
	}
	if w.Schema != resultWireSchema {
		return fmt.Errorf("rooftune: unmarshal Result: schema %q, want %q", w.Schema, resultWireSchema)
	}
	out := Result{
		SystemName: w.SystemName,
		Engine:     w.Engine,
		SearchTime: time.Duration(w.SearchNs),
		Warnings:   w.Warnings,
	}
	for _, cw := range w.Compute {
		c := ComputePoint{
			Label:       cw.Label,
			Sockets:     cw.Sockets,
			Desc:        cw.Desc,
			Flops:       units.Flops(cw.Flops),
			Intensity:   units.Intensity(cw.Intensity),
			Theoretical: units.Flops(cw.Theoretical),
		}
		if cw.Dims != nil {
			c.Dims = core.Dims{N: cw.Dims.N, M: cw.Dims.M, K: cw.Dims.K}
		}
		if len(cw.Config) > 0 {
			cfg, err := bench.UnmarshalConfig(cw.Config)
			if err != nil {
				return fmt.Errorf("rooftune: unmarshal Result: compute point %q: %w", cw.Label, err)
			}
			c.Config = cfg
		}
		out.Compute = append(out.Compute, c)
	}
	for _, mw := range w.Memory {
		out.Memory = append(out.Memory, MemoryPoint{
			Sockets:     mw.Sockets,
			Region:      mw.Region,
			Elements:    mw.Elements,
			Bandwidth:   units.Bandwidth(mw.Bandwidth),
			Theoretical: units.Bandwidth(mw.Theoretical),
		})
	}
	out.Roofline = assembleRoofline(&out)
	*r = out
	return nil
}

// eventWire mirrors Event with the kind by name — the stable contract an
// SSE stream's consumers parse, immune to reordering of the EventKind
// constants.
type eventWire struct {
	Kind      string  `json:"kind"`
	Sweep     string  `json:"sweep,omitempty"`
	From      string  `json:"from,omitempty"`
	Workload  string  `json:"workload,omitempty"`
	Cases     int     `json:"cases,omitempty"`
	Case      string  `json:"case,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Unit      string  `json:"unit,omitempty"`
	Pruned    bool    `json:"pruned,omitempty"`
	ElapsedNs int64   `json:"elapsedNs,omitempty"`
	Warning   string  `json:"warning,omitempty"`
}

// eventKindNames maps each EventKind to its wire name; String() is for
// humans and could legitimately drift, so the wire has its own table.
var eventKindNames = map[EventKind]string{
	EventSweepStarted:  "sweep-started",
	EventCaseEvaluated: "case-evaluated",
	EventSweepWon:      "sweep-won",
	EventRegionEmpty:   "region-empty",
	EventSweepSeeded:   "sweep-seeded",
}

// MarshalJSON encodes the event with its kind by name.
func (e Event) MarshalJSON() ([]byte, error) {
	kind, ok := eventKindNames[e.Kind]
	if !ok {
		return nil, fmt.Errorf("rooftune: marshal Event: unknown kind %d", int(e.Kind))
	}
	return json.Marshal(eventWire{
		Kind:      kind,
		Sweep:     e.Sweep,
		From:      e.From,
		Workload:  e.Workload,
		Cases:     e.Cases,
		Case:      e.Case,
		Value:     e.Value,
		Unit:      e.Unit,
		Pruned:    e.Pruned,
		ElapsedNs: int64(e.Elapsed),
		Warning:   e.Warning,
	})
}

// UnmarshalJSON decodes an event, rejecting unknown kind names.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("rooftune: unmarshal Event: %w", err)
	}
	kind, ok := eventKindByName(w.Kind)
	if !ok {
		return fmt.Errorf("rooftune: unmarshal Event: unknown kind %q", w.Kind)
	}
	*e = Event{
		Kind:     kind,
		Sweep:    w.Sweep,
		From:     w.From,
		Workload: w.Workload,
		Cases:    w.Cases,
		Case:     w.Case,
		Value:    w.Value,
		Unit:     w.Unit,
		Pruned:   w.Pruned,
		Elapsed:  time.Duration(w.ElapsedNs),
		Warning:  w.Warning,
	}
	return nil
}

func eventKindByName(name string) (EventKind, bool) {
	for k, n := range eventKindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}
