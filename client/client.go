// Package client is the typed consumer of the roofserved HTTP API: it
// speaks the versioned rooftune/serve/v1 wire contract, decodes Results
// and progress events into the library's own types, and turns the
// daemon's structured error envelope into typed errors a caller can
// dispatch on.
//
// The client is overload-aware by default: requests refused with 429
// (admission shed) or 503 are retried a bounded number of times with
// backoff, honoring the daemon's Retry-After hint when one is present.
// Callers that want to observe shedding raw disable retries with
// WithRetries(0) and inspect the returned *Error.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rooftune"
	servev1 "rooftune/serve/v1"
)

// Error is a typed daemon refusal: the HTTP status plus the structured
// servev1 error envelope the daemon sent with it.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the daemon's stable error classification (empty if the
	// response carried no parseable envelope).
	Code servev1.ErrorCode
	// Message is the human-readable detail.
	Message string
	// RetryAfter is the daemon's resubmission hint, when it sent one.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("roofserved: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("roofserved: %d: %s", e.Status, e.Message)
}

// Temporary reports whether the refusal is load-induced and worth
// retrying: an admission shed (429) or an unavailable daemon (503).
func (e *Error) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Option configures a Client.
type Option func(*Client)

// WithClientID sets the identifier sent as the X-Roofserve-Client
// header on every request — the key the daemon's per-client fair
// queuing buckets this client under.
func WithClientID(id string) Option {
	return func(c *Client) { c.clientID = id }
}

// WithHTTPClient substitutes the underlying HTTP client (custom
// transports, timeouts, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetries bounds how many times a Temporary refusal (429/503) is
// retried before it is returned to the caller (default 2; 0 disables
// retrying).
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoff sets the base delay between retries when the daemon sent
// no Retry-After hint; the delay doubles per attempt (default 250ms).
func WithBackoff(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// WithPollInterval sets how often Wait polls a job's status
// (default 50ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// Client talks to one roofserved daemon.
type Client struct {
	base     string
	http     *http.Client
	clientID string
	retries  int
	backoff  time.Duration
	poll     time.Duration
	jitter   func() float64 // [0,1) retry-jitter source; tests inject a fixed one
}

// New builds a client for the daemon at base (scheme optional; bare
// host:port gets http://).
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		http:    http.DefaultClient,
		retries: 2,
		backoff: 250 * time.Millisecond,
		poll:    50 * time.Millisecond,
		jitter:  rand.Float64,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// TuneResponse is a synchronous tuning answer: the decoded Result plus
// the wire facts a caller may assert on.
type TuneResponse struct {
	// Result is the decoded rooftune/result/v1 payload.
	Result *rooftune.Result
	// Raw is the response body verbatim — on a cache hit these are the
	// exact stored bytes, byte-identical across requests.
	Raw []byte
	// Cached reports the X-Roofserve-Cache disposition.
	Cached bool
	// Fingerprint is the campaign's content address.
	Fingerprint string
	// Job is the job that produced the response (empty on a cache hit).
	Job string
}

// Tune runs a campaign synchronously (POST /v1/tune): the call blocks
// until the daemon answers from its cache or finishes the run.
func (c *Client) Tune(ctx context.Context, campaign servev1.Campaign) (*TuneResponse, error) {
	var out *TuneResponse
	err := c.withRetry(ctx, func() error {
		resp, body, err := c.postJSON(ctx, "/v1/tune", campaign)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return responseError(resp, body)
		}
		var res rooftune.Result
		if err := json.Unmarshal(body, &res); err != nil {
			return fmt.Errorf("client: decode result: %w", err)
		}
		out = &TuneResponse{
			Result:      &res,
			Raw:         body,
			Cached:      resp.Header.Get(servev1.CacheHeader) == "hit",
			Fingerprint: resp.Header.Get(servev1.FingerprintHeader),
			Job:         resp.Header.Get(servev1.JobHeader),
		}
		return nil
	})
	return out, err
}

// Submit starts a campaign asynchronously (POST /v1/jobs) and returns
// its job handle; poll with Status/Wait or stream with Events.
func (c *Client) Submit(ctx context.Context, campaign servev1.Campaign) (servev1.JobStatus, error) {
	var out servev1.JobStatus
	err := c.withRetry(ctx, func() error {
		resp, body, err := c.postJSON(ctx, "/v1/jobs", campaign)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return responseError(resp, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			return fmt.Errorf("client: decode job status: %w", err)
		}
		return nil
	})
	return out, err
}

// Status fetches a job's current status (GET /v1/jobs/{id}).
func (c *Client) Status(ctx context.Context, id string) (servev1.JobStatus, error) {
	return c.getStatus(ctx, "/v1/jobs/"+id)
}

// Wait polls a job until it reaches a terminal state or ctx is done.
func (c *Client) Wait(ctx context.Context, id string) (servev1.JobStatus, error) {
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(c.poll):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Cancel aborts a job (DELETE /v1/jobs/{id}).
func (c *Client) Cancel(ctx context.Context, id string) (servev1.JobStatus, error) {
	var out servev1.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return out, err
	}
	resp, body, err := c.do(req)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, responseError(resp, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("client: decode job status: %w", err)
	}
	return out, nil
}

// Events streams a job's progress (GET /v1/jobs/{id}/events): the
// recorded history replays first, then live events follow; fn is called
// for each in order. A non-nil fn error stops the stream and is
// returned. The terminal state from the daemon's closing "end" event is
// returned when the stream completes.
func (c *Client) Events(ctx context.Context, id string, fn func(rooftune.Event) error) (servev1.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	c.decorate(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: subscribe to events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return "", responseError(resp, body)
	}

	// Minimal SSE reader for the daemon's dialect: an "event: <name>"
	// line names the block, "data: <payload>" carries it, a blank line
	// ends it. Unnamed blocks are progress events; "end" terminates.
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	name := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			name = ""
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			if name == "end" {
				var end struct {
					State servev1.State `json:"state"`
				}
				if err := json.Unmarshal([]byte(payload), &end); err != nil {
					return "", fmt.Errorf("client: decode end event: %w", err)
				}
				return end.State, nil
			}
			var ev rooftune.Event
			if err := json.Unmarshal([]byte(payload), &ev); err != nil {
				return "", fmt.Errorf("client: decode event: %w", err)
			}
			if fn != nil {
				if err := fn(ev); err != nil {
					return "", err
				}
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return "", fmt.Errorf("client: event stream: %w", err)
	}
	return "", fmt.Errorf("client: event stream ended before the job did")
}

// Metrics fetches the daemon's Prometheus text exposition (GET
// /metrics) verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, body, err := c.do(req)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", responseError(resp, body)
	}
	return string(body), nil
}

// getStatus fetches and decodes a JobStatus from a GET endpoint.
func (c *Client) getStatus(ctx context.Context, path string) (servev1.JobStatus, error) {
	var out servev1.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return out, err
	}
	resp, body, err := c.do(req)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, responseError(resp, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("client: decode job status: %w", err)
	}
	return out, nil
}

// withRetry runs attempt, retrying Temporary refusals up to the
// configured bound. The daemon's Retry-After hint takes precedence over
// the client's own exponential backoff.
func (c *Client) withRetry(ctx context.Context, attempt func() error) error {
	delay := c.backoff
	for tries := 0; ; tries++ {
		err := attempt()
		if err == nil {
			return nil
		}
		re, ok := asError(err)
		if !ok || !re.Temporary() || tries >= c.retries {
			return err
		}
		select {
		case <-time.After(c.retryWait(delay, re)):
		case <-ctx.Done():
			return ctx.Err()
		}
		delay *= 2
	}
}

// retryWait computes the sleep before the next attempt: the daemon's
// Retry-After hint when one was sent, else the client's own backoff,
// plus additive bounded jitter of up to +25% — never below the hint.
// The daemon hands every shed client the same fixed Retry-After, so
// sleeping it exactly would re-flood the admission queue in lockstep
// and shed the same cohort again; spreading the retries keeps the
// hint's promise (never earlier) while breaking the synchronization.
func (c *Client) retryWait(delay time.Duration, re *Error) time.Duration {
	wait := delay
	if re.RetryAfter > 0 {
		wait = re.RetryAfter
	}
	return wait + time.Duration(c.jitter()*0.25*float64(wait))
}

// asError unwraps a typed daemon error.
func asError(err error) (*Error, bool) {
	var re *Error
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// postJSON marshals v and POSTs it to path, returning the response and
// its fully read body.
func (c *Client) postJSON(ctx context.Context, path string, v any) (*http.Response, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, nil, fmt.Errorf("client: encode campaign: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

// do decorates, sends, and drains one request.
func (c *Client) do(req *http.Request) (*http.Response, []byte, error) {
	c.decorate(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("client: contact daemon: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("client: read response: %w", err)
	}
	return resp, body, nil
}

// decorate applies the client identity header.
func (c *Client) decorate(req *http.Request) {
	if c.clientID != "" {
		req.Header.Set(servev1.ClientHeader, c.clientID)
	}
}

// responseError turns a non-2xx response into a typed *Error, decoding
// the servev1 envelope when present and falling back to the raw body.
func responseError(resp *http.Response, body []byte) error {
	e := &Error{Status: resp.StatusCode}
	var env servev1.ErrorEnvelope
	if json.Unmarshal(body, &env) == nil && env.Error.Message != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
		if env.Error.RetryAfterSeconds > 0 {
			e.RetryAfter = time.Duration(env.Error.RetryAfterSeconds) * time.Second
		}
	} else {
		e.Message = string(bytes.TrimSpace(body))
	}
	if e.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
