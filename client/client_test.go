package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rooftune"
	servev1 "rooftune/serve/v1"
)

// shedBody renders the daemon's 429 envelope.
func shedBody(retrySeconds int) string {
	return fmt.Sprintf(`{"error":{"code":"overloaded","message":"admission refused","retryAfterSeconds":%d}}`, retrySeconds)
}

func okResult() string {
	return `{"schema":"rooftune/result/v1","system":"t","points":null,"warnings":null,"roofline":{"points":null,"roofs":null}}`
}

// TestTypedErrorDecode: a non-2xx response with the envelope becomes a
// *Error carrying status, code, message and the retry hint.
func TestTypedErrorDecode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, shedBody(3))
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetries(0)).Tune(context.Background(), servev1.Campaign{System: "t"})
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not *client.Error", err)
	}
	if re.Status != http.StatusTooManyRequests || re.Code != servev1.CodeOverloaded {
		t.Fatalf("typed error: %+v", re)
	}
	if re.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %s, want 3s", re.RetryAfter)
	}
	if !re.Temporary() {
		t.Fatal("429 not Temporary")
	}
}

// TestErrorFallsBackToHeaderAndBody: without a parseable envelope the
// raw body becomes the message and the Retry-After header still feeds
// the hint.
func TestErrorFallsBackToHeaderAndBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "maintenance")
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetries(0)).Tune(context.Background(), servev1.Campaign{System: "t"})
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not *client.Error", err)
	}
	if re.Code != "" || re.Message != "maintenance" || re.RetryAfter != 2*time.Second {
		t.Fatalf("fallback error: %+v", re)
	}
}

// TestRetryHonorsRetryAfter: a shed submission retries after the
// daemon's hint and succeeds; the client observed the full wait.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var lastShed atomic.Int64
	var retriedAfter atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			lastShed.Store(time.Now().UnixNano())
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, shedBody(1))
			return
		}
		retriedAfter.Store(time.Now().UnixNano() - lastShed.Load())
		w.Header().Set(servev1.CacheHeader, "miss")
		w.Header().Set(servev1.FingerprintHeader, "fp")
		fmt.Fprint(w, okResult())
	}))
	defer ts.Close()

	resp, err := New(ts.URL, WithRetries(2)).Tune(context.Background(), servev1.Campaign{System: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("daemon saw %d calls, want 3 (two sheds + success)", calls.Load())
	}
	if got := time.Duration(retriedAfter.Load()); got < time.Second {
		t.Fatalf("final retry arrived %s after the shed, want >= the 1s hint", got)
	}
	if resp.Fingerprint != "fp" || resp.Cached {
		t.Fatalf("response: %+v", resp)
	}
}

// TestRetriesBounded: WithRetries(1) gives up after one retry and
// surfaces the typed error.
func TestRetriesBounded(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, shedBody(0))
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetries(1), WithBackoff(time.Millisecond)).
		Submit(context.Background(), servev1.Campaign{System: "t"})
	var re *Error
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests {
		t.Fatalf("error: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("daemon saw %d calls, want 2 (original + one retry)", calls.Load())
	}
}

// TestNonTemporaryNotRetried: a 400 is returned immediately, however
// many retries are configured.
func TestNonTemporaryNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"bad_campaign","message":"no"}}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetries(5)).Tune(context.Background(), servev1.Campaign{})
	var re *Error
	if !errors.As(err, &re) || re.Code != servev1.CodeBadCampaign {
		t.Fatalf("error: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("daemon saw %d calls, want 1", calls.Load())
	}
}

// TestClientIDHeader: every request carries the configured identity.
func TestClientIDHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(servev1.ClientHeader))
		w.Header().Set(servev1.CacheHeader, "hit")
		fmt.Fprint(w, okResult())
	}))
	defer ts.Close()

	if _, err := New(ts.URL, WithClientID("ci-bot")).Tune(context.Background(), servev1.Campaign{System: "t"}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "ci-bot" {
		t.Fatalf("daemon saw client id %q, want ci-bot", got.Load())
	}
}

// TestWaitPollsToTerminal: Wait polls status until the job reports a
// terminal state.
func TestWaitPollsToTerminal(t *testing.T) {
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := servev1.JobStatus{ID: "j-1", State: servev1.StateRunning}
		if polls.Add(1) >= 3 {
			st.State = servev1.StateDone
			st.Result = json.RawMessage(`{"ok":true}`)
		}
		_ = json.NewEncoder(w).Encode(st)
	}))
	defer ts.Close()

	st, err := New(ts.URL, WithPollInterval(time.Millisecond)).Wait(context.Background(), "j-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != servev1.StateDone || polls.Load() < 3 {
		t.Fatalf("state %q after %d polls", st.State, polls.Load())
	}
}

// TestWaitRespectsContext: a cancelled context stops the polling loop.
func TestWaitRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(servev1.JobStatus{ID: "j-1", State: servev1.StateRunning})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := New(ts.URL, WithPollInterval(time.Millisecond)).Wait(ctx, "j-1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestEventsDecodesSSE: the stream decodes each progress event in
// order and returns the terminal state from the end block.
func TestEventsDecodesSSE(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w,
			"data: {\"kind\":\"sweep-started\",\"sweep\":\"s1\",\"cases\":2}\n\n",
			"data: {\"kind\":\"sweep-won\",\"sweep\":\"s1\",\"case\":\"c1\",\"value\":42}\n\n",
			"event: end\ndata: {\"state\":\"done\"}\n\n")
	}))
	defer ts.Close()

	var kinds []rooftune.EventKind
	state, err := New(ts.URL).Events(context.Background(), "j-1", func(ev rooftune.Event) error {
		kinds = append(kinds, ev.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if state != servev1.StateDone {
		t.Fatalf("terminal state %q, want done", state)
	}
	if len(kinds) != 2 || kinds[0] != rooftune.EventSweepStarted || kinds[1] != rooftune.EventSweepWon {
		t.Fatalf("decoded kinds: %v", kinds)
	}
}

// TestEventsCallbackErrorStopsStream: fn's error is returned verbatim.
func TestEventsCallbackErrorStopsStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: {\"kind\":\"sweep-started\"}\n\n", "event: end\ndata: {\"state\":\"done\"}\n\n")
	}))
	defer ts.Close()

	sentinel := errors.New("stop")
	_, err := New(ts.URL).Events(context.Background(), "j-1", func(rooftune.Event) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestEventsTruncatedStream: a stream that ends without the end block
// is an error, not a silent empty success.
func TestEventsTruncatedStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: {\"kind\":\"sweep-started\"}\n\n")
	}))
	defer ts.Close()

	if _, err := New(ts.URL).Events(context.Background(), "j-1", nil); err == nil {
		t.Fatal("truncated stream did not error")
	}
}

// TestBaseURLNormalization: bare host:port and trailing slashes both
// resolve to the same daemon.
func TestBaseURLNormalization(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j-1" {
			t.Errorf("path %q", r.URL.Path)
		}
		_ = json.NewEncoder(w).Encode(servev1.JobStatus{ID: "j-1", State: servev1.StateDone})
	}))
	defer ts.Close()

	hostport := ts.Listener.Addr().String()
	for _, base := range []string{hostport, ts.URL + "/"} {
		if _, err := New(base).Status(context.Background(), "j-1"); err != nil {
			t.Fatalf("base %q: %v", base, err)
		}
	}
}

// TestRetryJitterDesynchronizesLockstep is the regression test for the
// lockstep re-flood: a fixed Retry-After slept exactly means every shed
// client retries at the same instant and the same cohort sheds again.
// The wait must honor the hint as a floor, stay within +25%, and differ
// across clients.
func TestRetryJitterDesynchronizesLockstep(t *testing.T) {
	re := &Error{Status: http.StatusTooManyRequests, RetryAfter: 4 * time.Second}

	floor := New("h")
	floor.jitter = func() float64 { return 0 }
	if got := floor.retryWait(time.Second, re); got != 4*time.Second {
		t.Fatalf("zero-jitter wait = %s, want exactly the 4s hint", got)
	}

	ceil := New("h")
	ceil.jitter = func() float64 { return 0.9999 }
	if got := ceil.retryWait(time.Second, re); got < 4*time.Second || got > 5*time.Second {
		t.Fatalf("max-jitter wait = %s, want within [4s, 5s] (hint + 25%%)", got)
	}

	// Without a hint the backoff gets the same treatment.
	noHint := &Error{Status: http.StatusTooManyRequests}
	if got := ceil.retryWait(time.Second, noHint); got < time.Second || got > 1250*time.Millisecond {
		t.Fatalf("backoff wait = %s, want within [1s, 1.25s]", got)
	}

	// The real point: a fleet of default clients must not share one
	// wait. All-identical draws from the default source mean the jitter
	// is not wired at all.
	waits := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		waits[New("h").retryWait(time.Second, re)] = true
	}
	if len(waits) < 2 {
		t.Fatalf("64 default clients computed %d distinct waits — retries are still lockstep", len(waits))
	}
	for w := range waits {
		if w < 4*time.Second {
			t.Fatalf("jittered wait %s undercuts the 4s Retry-After hint", w)
		}
	}
}
