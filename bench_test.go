package rooftune

// This file is the benchmark harness required by the reproduction: one
// testing.B benchmark per table and figure of the paper, regenerating the
// artifact per iteration, plus ablation benchmarks for the design choices
// called out in DESIGN.md §6.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The per-iteration cost of the table benchmarks is a full autotuning
// campaign in virtual time; the interesting outputs are the custom
// metrics (virtual search seconds, speedups), reported alongside
// wall-clock ns/op.

import (
	"context"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/blas"
	"rooftune/internal/core"
	"rooftune/internal/experiments"
	"rooftune/internal/hw"
	"rooftune/internal/stats"
	"rooftune/internal/stream"
	"rooftune/internal/units"
	"rooftune/internal/xrand"
)

func BenchmarkTable1(b *testing.B) {
	r := experiments.New()
	for i := 0; i < b.N; i++ {
		if r.Table1().Text() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	r := experiments.New()
	for i := 0; i < b.N; i++ {
		if r.Table2().Text() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	r := experiments.New()
	for i := 0; i < b.N; i++ {
		if r.Table3().Text() == "" {
			b.Fatal("empty table")
		}
	}
}

// benchTable4Data runs the exhaustive Default campaign (Tables IV+V).
func benchTable4Data(b *testing.B, r *experiments.Runner) []*experiments.DGEMMRun {
	runs, err := r.Table4Data()
	if err != nil {
		b.Fatal(err)
	}
	return runs
}

func BenchmarkTable4(b *testing.B) {
	r := experiments.New()
	var virtual float64
	for i := 0; i < b.N; i++ {
		runs := benchTable4Data(b, r)
		experiments.Table4(runs)
		virtual = 0
		for _, run := range runs {
			virtual += run.Total.Seconds()
		}
	}
	b.ReportMetric(virtual, "virtual-s")
}

func BenchmarkTable5(b *testing.B) {
	r := experiments.New()
	for i := 0; i < b.N; i++ {
		runs := benchTable4Data(b, r)
		if _, err := experiments.Table5(runs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	r := experiments.New()
	var virtual float64
	for i := 0; i < b.N; i++ {
		runs, err := r.Table6Data()
		if err != nil {
			b.Fatal(err)
		}
		experiments.Table6(runs)
		virtual = 0
		for _, run := range runs {
			virtual += run.Total.Seconds()
		}
	}
	b.ReportMetric(virtual, "virtual-s")
}

func BenchmarkTable7(b *testing.B) {
	r := experiments.New()
	for i := 0; i < b.N; i++ {
		if r.Table7().Text() == "" {
			b.Fatal("empty table")
		}
	}
}

func benchOptTable(b *testing.B, system string) {
	r := experiments.New()
	var bestSpeedup float64
	for i := 0; i < b.N; i++ {
		tbl, err := r.OptimizationTable(system)
		if err != nil {
			b.Fatal(err)
		}
		bestSpeedup = 0
		for _, row := range tbl.Rows {
			switch row.Technique {
			case "Confidence", "C+Inner", "C+Inner+R", "C+I+Outer", "C+I+O+R":
				if row.Speedup > bestSpeedup {
					bestSpeedup = row.Speedup
				}
			}
		}
	}
	b.ReportMetric(bestSpeedup, "best-CI-speedup-x")
}

func BenchmarkTable8(b *testing.B)  { benchOptTable(b, "2650v4") }
func BenchmarkTable9(b *testing.B)  { benchOptTable(b, "2695v4") }
func BenchmarkTable10(b *testing.B) { benchOptTable(b, "Gold 6132") }
func BenchmarkTable11(b *testing.B) { benchOptTable(b, "Gold 6148") }

func BenchmarkFig1(b *testing.B) {
	r := experiments.New()
	runs := benchTable4Data(b, r)
	triads, err := r.Table6Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := experiments.Fig1(runs[3], triads[3])
		if err != nil {
			b.Fatal(err)
		}
		if m.RenderASCII(72, 18) == "" || m.RenderSVG(800, 560) == "" {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig2() == "" {
			b.Fatal("empty diagram")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	r := experiments.New()
	runs := benchTable4Data(b, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig3(runs).TSV() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	r := experiments.New()
	triads, err := r.Table6Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig4(triads).TSV() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	r := experiments.New()
	var tables []*experiments.OptTable
	for _, sys := range []string{"2650v4", "Gold 6148"} {
		tbl, err := r.OptimizationTable(sys)
		if err != nil {
			b.Fatal(err)
		}
		tables = append(tables, tbl)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig5(tables).TSV() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	r := experiments.New()
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig6Data("2650v4")
		if err != nil {
			b.Fatal(err)
		}
		if experiments.Fig6(pts).TSV() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkIntelComparison(b *testing.B) {
	r := experiments.New()
	g, err := r.ExhaustiveDefault(r.Systems[2])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunIntelComparison(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkAblationWelford compares the online variance update against
// recomputing with the two-pass formula after every observation — the
// cost the paper avoids by using Welford (§III-C3).
func BenchmarkAblationWelford(b *testing.B) {
	rng := xrand.New(1)
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.LogNormal(0, 0.02)
	}
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w stats.Welford
			for _, x := range samples {
				w.Add(x)
				_ = w.Variance()
			}
		}
	})
	b.Run("two-pass-per-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for n := 1; n <= len(samples); n++ {
				_, _ = stats.TwoPassMeanVariance(samples[:n])
			}
		}
	})
}

// BenchmarkAblationBootstrap quantifies §III-C3's rejection of online
// bootstrapping: one normal-theory CI versus one bootstrap CI at the
// sample sizes the stop conditions evaluate.
func BenchmarkAblationBootstrap(b *testing.B) {
	rng := xrand.New(2)
	samples := make([]float64, 50)
	var w stats.Welford
	for i := range samples {
		samples[i] = rng.LogNormal(0, 0.02)
		w.Add(samples[i])
	}
	b.Run("normal-ci", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = stats.NormalCI(&w, 0.99)
		}
	})
	b.Run("bootstrap-1000", func(b *testing.B) {
		boot := xrand.New(3)
		for i := 0; i < b.N; i++ {
			_ = stats.BootstrapCI(samples, 0.99, 1000, boot)
		}
	})
}

// BenchmarkAblationMinCount contrasts min_count 2 vs 100 on the noisy
// 2695v4 (§VI-C): the low setting is faster but degrades the result.
func BenchmarkAblationMinCount(b *testing.B) {
	r := experiments.New()
	sys, err := r.SystemByName("2695v4")
	if err != nil {
		b.Fatal(err)
	}
	for _, mc := range []struct {
		name string
		min  int
	}{{"min2", 2}, {"min100", 100}} {
		b.Run(mc.name, func(b *testing.B) {
			var virtual, fs1 float64
			for i := 0; i < b.N; i++ {
				tech, _ := core.TechniqueByName("2695v4", "C+Inner", mc.min)
				run, err := r.RunDGEMMTechnique(sys, tech)
				if err != nil {
					b.Fatal(err)
				}
				virtual = run.Total.Seconds()
				fs1 = run.S1.BestValue() / 1e9
			}
			b.ReportMetric(virtual, "virtual-s")
			b.ReportMetric(fs1, "FS1-gflops")
		})
	}
}

// BenchmarkAblationOrder measures traversal-order cost under full
// early termination (the paper's "R" rows and Fig. 6 discussion).
func BenchmarkAblationOrder(b *testing.B) {
	space := core.UnionDGEMMSpace()
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	for _, ord := range []core.Order{core.OrderForward, core.OrderReverse, core.OrderRandom} {
		b.Run(ord.String(), func(b *testing.B) {
			var virtual float64
			for i := 0; i < b.N; i++ {
				eng := bench.NewSimEngine(hw.IdunGold6148, experiments.DefaultSeed)
				tuner := core.NewTuner(eng.Clock, budget, ord)
				res, err := tuner.Run(context.Background(), experiments.DGEMMCases(eng, space, 1))
				if err != nil {
					b.Fatal(err)
				}
				virtual = res.Elapsed.Seconds()
			}
			b.ReportMetric(virtual, "virtual-s")
		})
	}
}

// BenchmarkAblationSpace compares the three §IV-A search spaces: the
// initial 539-point space, the reduced 96-point space, and the union
// space the results imply.
func BenchmarkAblationSpace(b *testing.B) {
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	for _, sp := range []struct {
		name  string
		space []core.Dims
	}{
		{"initial-539", core.InitialDGEMMSpace()},
		{"reduced-96", core.ReducedDGEMMSpace()},
		{"union-384", core.UnionDGEMMSpace()},
	} {
		b.Run(sp.name, func(b *testing.B) {
			var virtual, best float64
			for i := 0; i < b.N; i++ {
				eng := bench.NewSimEngine(hw.IdunE52650v4, experiments.DefaultSeed)
				tuner := core.NewTuner(eng.Clock, budget, core.OrderForward)
				res, err := tuner.Run(context.Background(), experiments.DGEMMCases(eng, sp.space, 1))
				if err != nil {
					b.Fatal(err)
				}
				virtual = res.Elapsed.Seconds()
				best = res.BestValue() / 1e9
			}
			b.ReportMetric(virtual, "virtual-s")
			b.ReportMetric(best, "best-gflops")
		})
	}
}

// BenchmarkAblationSearch weighs the paper's §IV-C position — exhaustive
// search suffices at this cardinality — against a hill-climbing local
// search with restarts: the metric pair to compare is virtual-s (cost)
// vs best-gflops (quality).
func BenchmarkAblationSearch(b *testing.B) {
	space := core.UnionDGEMMSpace()
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	b.Run("exhaustive", func(b *testing.B) {
		var virtual, best float64
		for i := 0; i < b.N; i++ {
			eng := bench.NewSimEngine(hw.IdunGold6148, experiments.DefaultSeed)
			tuner := core.NewTuner(eng.Clock, budget, core.OrderForward)
			res, err := tuner.Run(context.Background(), experiments.DGEMMCases(eng, space, 1))
			if err != nil {
				b.Fatal(err)
			}
			virtual, best = res.Elapsed.Seconds(), res.BestValue()/1e9
		}
		b.ReportMetric(virtual, "virtual-s")
		b.ReportMetric(best, "best-gflops")
	})
	b.Run("hill-climb-6-restarts", func(b *testing.B) {
		var virtual, best, evals float64
		for i := 0; i < b.N; i++ {
			eng := bench.NewSimEngine(hw.IdunGold6148, experiments.DefaultSeed)
			ls := core.NewLocalSearch(eng.Clock, budget, core.UnionSpaceNeighborhood(), 6, 11)
			res, err := ls.Run(context.Background(), experiments.DGEMMCases(eng, space, 1))
			if err != nil {
				b.Fatal(err)
			}
			virtual, best = res.Elapsed.Seconds(), res.BestValue()/1e9
			evals = float64(res.Evaluations())
		}
		b.ReportMetric(virtual, "virtual-s")
		b.ReportMetric(best, "best-gflops")
		b.ReportMetric(evals, "configs-evaluated")
	})
}

// BenchmarkSecondChance measures the §VII late-bloomer remedy against the
// paper's min_count=100 fix on the anomalous 2695v4.
func BenchmarkSecondChance(b *testing.B) {
	r := experiments.New()
	var plain, fixed float64
	for i := 0; i < b.N; i++ {
		row, err := r.SecondChanceStudy()
		if err != nil {
			b.Fatal(err)
		}
		plain, fixed = row.FS1, row.FS1Fixed
	}
	b.ReportMetric(plain, "plain-FS1-gflops")
	b.ReportMetric(fixed, "fixed-FS1-gflops")
}

// BenchmarkSimulatedBuild measures the full public-API path: a complete
// roofline characterisation of one system.
func BenchmarkSimulatedBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Simulated("Gold 6148", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeKernels measures the real substrate kernels directly:
// the pure-Go DGEMM and TRIAD the native engine times.
func BenchmarkNativeKernels(b *testing.B) {
	b.Run("dgemm-512", func(b *testing.B) {
		a := blas.NewMatrix(512, 512)
		bb := blas.NewMatrix(512, 512)
		c := blas.NewMatrix(512, 512)
		a.FillPattern(1)
		bb.FillPattern(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blas.DGEMM(1, a, bb, 0, c, 0)
		}
		flops := units.DGEMMFlops(512, 512, 512)
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
	b.Run("triad-8MiB", func(b *testing.B) {
		v := stream.NewVectors(8 << 20 / 24)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Run(stream.Triad, 0)
		}
		bytes := units.TriadBytes(v.N())
		b.ReportMetric(bytes*float64(b.N)/b.Elapsed().Seconds()/1e9, "GB/s")
	})
}
