package rooftune

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		opts    []Option
		wantErr string
	}{
		{"no target", nil, "no target"},
		{"two targets", []Option{WithSystem("Gold 6148"), WithNative()}, "mutually exclusive"},
		{"native then system", []Option{WithNative(), WithSystem("Gold 6148")}, "mutually exclusive"},
		{"unknown system", []Option{WithSystem("warp-drive")}, "warp-drive"},
		{"invalid system spec", []Option{WithSystemSpec(hw.System{Name: "broken"})}, "non-positive"},
		{"empty space", []Option{WithSystem("Gold 6148"), WithSpace(nil)}, "empty search space"},
		{"negative threads", []Option{WithNative(), WithThreads(-2)}, "negative thread count"},
		{"inverted triad bounds", []Option{
			WithSystem("Gold 6148"), WithTriadRange(8*units.MiB, 2*units.MiB),
		}, "inverted TRIAD"},
		{"triad lo above default hi", []Option{
			WithSystem("Gold 6148"), WithTriadRange(900*units.MiB, 0),
		}, "inverted TRIAD"},
		{"unknown workload", []Option{WithSystem("Gold 6148"), WithWorkloads("warp-kernel")}, `"warp-kernel"`},
		{"spmv nnz above dimension", []Option{WithSystem("Gold 6148"), WithSpMVShape(64, 128)}, "exceeds matrix dimension"},
		{"negative spmv shape", []Option{WithSystem("Gold 6148"), WithSpMVShape(-1, 16)}, "negative shape"},
		{"degenerate stencil grid", []Option{WithSystem("Gold 6148"), WithStencilGrid(2, 512)}, "too small"},
		{"negative stencil grid", []Option{WithSystem("Gold 6148"), WithStencilGrid(-4, 512)}, "negative grid"},
		{"empty workloads", []Option{WithSystem("Gold 6148"), WithWorkloads()}, "no workloads"},
		{"negative case shards", []Option{WithSystem("Gold 6148"), WithCaseShards(-1)}, "negative shard count"},
		{"native case shards", []Option{WithNative(), WithCaseShards(2)}, "simulated target"},
		{"case shards then native", []Option{WithCaseShards(4), WithNative()}, "simulated target"},
		{"no triad levels", []Option{WithSystem("Gold 6148"), WithTriadLevels()}, "no residency levels"},
		{"unknown triad level", []Option{WithSystem("Gold 6148"), WithTriadLevels("L7")}, `"L7"`},
		{"duplicate triad level", []Option{WithSystem("Gold 6148"), WithTriadLevels("L2", "L2")}, "twice"},
		{"native triad levels", []Option{WithNative(), WithTriadLevels("L1", "L2")}, "simulated target"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) must error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func tinySessionOptions() []Option {
	return []Option{
		WithSystemSpec(tinySystem()),
		WithSpace([]core.Dims{
			{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128},
			{N: 2048, M: 2048, K: 128},
		}),
		WithTriadRange(16*units.KiB, 256*units.MiB),
	}
}

// TestSpMVStencilSession runs the two §VII workloads end to end on a
// simulated system and pins the acceptance contract: each lands a
// FLOP/s-metered winner whose operational intensity is strictly between
// TRIAD's and DGEMM's, carried onto the roofline as an application point
// rather than a compute ceiling.
func TestSpMVStencilSession(t *testing.T) {
	sess, err := New(
		WithSystem("Gold 6148"),
		WithWorkloads("spmv", "stencil"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := hw.Get("Gold 6148")
	if want := 2 * len(sys.SocketConfigs()); len(res.Compute) != want || len(res.Memory) != 0 {
		t.Fatalf("points: %d compute, %d memory, want %d compute only",
			len(res.Compute), len(res.Memory), want)
	}
	labels := map[string]int{}
	minDGEMM := units.DGEMMIntensity(500, 500, 64) // smallest intensity in any built-in DGEMM space
	for _, c := range res.Compute {
		labels[c.Label]++
		if c.Flops <= 0 {
			t.Fatalf("%s point has no throughput: %+v", c.Label, c)
		}
		if c.Intensity <= units.TriadIntensity || c.Intensity >= minDGEMM {
			t.Fatalf("%s intensity %v not strictly between TRIAD's %v and DGEMM's %v",
				c.Label, c.Intensity, units.TriadIntensity, minDGEMM)
		}
		if c.Dims != (core.Dims{}) {
			t.Fatalf("%s point carries DGEMM dims: %+v", c.Label, c)
		}
		if c.Desc == "" || c.Config == nil {
			t.Fatalf("%s point missing winner identity: %+v", c.Label, c)
		}
		switch c.Label {
		case "SpMV":
			cfg, ok := c.Config.(bench.SpMVConfig)
			if !ok || cfg.ChunkRows <= 0 {
				t.Fatalf("SpMV config = %#v", c.Config)
			}
		case "stencil":
			cfg, ok := c.Config.(bench.StencilConfig)
			if !ok || cfg.TileX <= 0 || cfg.TileY <= 0 {
				t.Fatalf("stencil config = %#v", c.Config)
			}
		default:
			t.Fatalf("unexpected label %q", c.Label)
		}
	}
	if labels["SpMV"] != len(sys.SocketConfigs()) || labels["stencil"] != len(sys.SocketConfigs()) {
		t.Fatalf("labels = %v", labels)
	}
	// The winners are application points, never ceilings; with no memory
	// sweeps there is no TRIAD point either (it would be zero-valued).
	if len(res.Roofline.Compute) != 0 || len(res.Roofline.Points) != len(res.Compute) {
		t.Fatalf("roofline: %d ceilings, %d points", len(res.Roofline.Compute), len(res.Roofline.Points))
	}
	again, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("equal seeds must reproduce identical Results")
	}
}

// TestChainedTriadLevels is the acceptance test for the per-level
// cache-aware roofline and cross-sweep incumbent chaining: a simulated
// session with all four residency regions produces a bandwidth ceiling
// per level in decreasing order L1 >= L2 >= L3 >= DRAM, renders every
// ceiling in the text and gnuplot output, and the chained run's winners
// and values are bit-identical to the unchained run (chaining may only
// change search cost).
func TestChainedTriadLevels(t *testing.T) {
	opts := func(chain bool, events *[]Event) []Option {
		o := []Option{
			WithSystem("Gold 6148"),
			WithTriadLevels("L1", "L2", "L3", "DRAM"),
			WithSweepChaining(chain),
			// A small DGEMM space keeps the run interactive; the memory
			// side — the subject here — is the full per-level sweep.
			WithSpace([]core.Dims{{N: 512, M: 512, K: 128}, {N: 2048, M: 2048, K: 128}}),
		}
		if events != nil {
			o = append(o, WithProgress(func(ev Event) { *events = append(*events, ev) }))
		}
		return o
	}
	var events []Event
	chained, err := New(opts(true, &events)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chained.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	sys, _ := hw.Get("Gold 6148")
	levels := []string{"L1", "L2", "L3", "DRAM"}
	if want := len(levels) * len(sys.SocketConfigs()); len(res.Memory) != want {
		t.Fatalf("memory points: %d, want %d (%v)", len(res.Memory), want, res.Memory)
	}
	byConfig := map[int]map[string]MemoryPoint{}
	for _, m := range res.Memory {
		if byConfig[m.Sockets] == nil {
			byConfig[m.Sockets] = map[string]MemoryPoint{}
		}
		byConfig[m.Sockets][m.Region] = m
		if m.Bandwidth <= 0 || m.Elements <= 0 {
			t.Fatalf("malformed memory point %+v", m)
		}
	}
	for _, sockets := range sys.SocketConfigs() {
		pts := byConfig[sockets]
		for i := 1; i < len(levels); i++ {
			hi, lo := pts[levels[i-1]], pts[levels[i]]
			if hi.Bandwidth < lo.Bandwidth {
				t.Fatalf("%d socket(s): %s bandwidth %v below %s %v — the hierarchy must be monotone",
					sockets, levels[i-1], hi.Bandwidth, levels[i], lo.Bandwidth)
			}
		}
	}

	// Every per-level ceiling renders in the text and gnuplot output.
	ascii := res.Roofline.RenderASCII(76, 20)
	gnuplot := res.Roofline.RenderGnuplot()
	for _, lv := range levels {
		for _, sockets := range sys.SocketConfigs() {
			name := fmt.Sprintf("%s, %d socket(s)", lv, sockets)
			if !strings.Contains(ascii, name) {
				t.Fatalf("ASCII render missing ceiling %q:\n%s", name, ascii)
			}
			if !strings.Contains(gnuplot, fmt.Sprintf("%q", name)) {
				t.Fatalf("gnuplot render missing ceiling %q:\n%s", name, gnuplot)
			}
		}
	}

	// Chaining is observable: one seeding per dependent level per socket
	// configuration, each naming its source sweep and a positive seed.
	seeded := 0
	for _, ev := range events {
		if ev.Kind != EventSweepSeeded {
			continue
		}
		seeded++
		if ev.Sweep == "" || ev.From == "" || ev.Value <= 0 || ev.Unit != "GB/s" {
			t.Fatalf("malformed sweep-seeded event: %+v", ev)
		}
	}
	if want := (len(levels) - 1) * len(sys.SocketConfigs()); seeded != want {
		t.Fatalf("sweep-seeded events: %d, want %d", seeded, want)
	}

	// The chained run's tuned points are bit-identical to the unchained
	// run's: seeding prunes search cost, never winners. (PrunedCount and
	// TotalSamples movement is asserted one level down, in the sweep
	// package's chain determinism suite.)
	unchained, err := New(opts(false, nil)...)
	if err != nil {
		t.Fatal(err)
	}
	base, err := unchained.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Memory, base.Memory) {
		t.Fatalf("chained memory points diverged from unchained:\nchained:   %+v\nunchained: %+v", res.Memory, base.Memory)
	}
	if !reflect.DeepEqual(res.Compute, base.Compute) {
		t.Fatalf("chained compute points diverged from unchained:\nchained:   %+v\nunchained: %+v", res.Compute, base.Compute)
	}
	if len(res.Warnings) != 0 || len(base.Warnings) != 0 {
		t.Fatalf("warnings: chained %v, unchained %v", res.Warnings, base.Warnings)
	}
}

// overChainWorkload chains two same-metric sweeps in the wrong direction
// (a fast region seeding a slow one), so the dependent sweep's every
// configuration is outer-pruned under chaining: the session must surface
// the salvage value loudly.
type overChainWorkload struct{}

func (overChainWorkload) Name() string { return "over-chain" }

func (overChainWorkload) Plan(t Target, p Params) (Plan, error) {
	var plan Plan
	mk := func(elems ...int) sweep.Spec {
		eng := bench.NewSimEngine(*t.Sys, p.Seed)
		var cases []bench.Case
		for _, n := range elems {
			cases = append(cases, eng.TriadCase(n, hw.AffinityClose, 1))
		}
		return sweep.Spec{Name: fmt.Sprintf("over-chain %d", len(plan.Sweeps)), Clock: eng.Clock, Cases: cases}
	}
	plan.Add("over-chain/fast", mk(1<<16, 1<<17), Point{Sockets: 1, Region: "L3"})
	plan.Chain("over-chain/slow", "over-chain/fast", mk(1<<22, 1<<23), Point{Sockets: 1, Region: "DRAM"})
	return plan, nil
}

var overChainOnce sync.Once

func TestChainedOverPruningSurfaces(t *testing.T) {
	overChainOnce.Do(func() {
		if err := RegisterWorkload(overChainWorkload{}); err != nil {
			t.Fatal(err)
		}
	})
	sess, err := New(
		WithSystemSpec(tinySystem()),
		WithWorkloads("over-chain"),
		WithSweepChaining(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		found = found || strings.Contains(w, "outer-pruned")
	}
	if !found {
		t.Fatalf("over-pruned chained sweep must warn, got warnings %v", res.Warnings)
	}
	// The salvage value still lands (flagged), so the result is complete.
	if len(res.Memory) != 2 {
		t.Fatalf("memory points: %+v", res.Memory)
	}
}

// badGraphWorkload plans a dangling SeedFrom edge; sessions must reject
// it at New, not mid-run.
type badGraphWorkload struct{}

func (badGraphWorkload) Name() string { return "bad-graph" }

func (badGraphWorkload) Plan(t Target, p Params) (Plan, error) {
	var plan Plan
	eng := bench.NewSimEngine(*t.Sys, p.Seed)
	plan.Chain("bad/a", "ghost", sweep.Spec{
		Name: "bad", Clock: eng.Clock,
		Cases: []bench.Case{eng.TriadCase(1<<16, hw.AffinityClose, 1)},
	}, Point{Sockets: 1, Region: "L3"})
	return plan, nil
}

var badGraphOnce sync.Once

func TestNewRejectsMalformedPlanGraph(t *testing.T) {
	badGraphOnce.Do(func() {
		if err := RegisterWorkload(badGraphWorkload{}); err != nil {
			t.Fatal(err)
		}
	})
	_, err := New(WithSystemSpec(tinySystem()), WithWorkloads("bad-graph"))
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("New must reject the dangling edge at construction, got %v", err)
	}
}

func TestSessionEvents(t *testing.T) {
	var events []Event
	sess, err := New(append(tinySessionOptions(), WithProgress(func(ev Event) {
		events = append(events, ev)
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sweeps := len(res.Compute) + len(res.Memory)
	counts := map[EventKind]int{}
	seenStart := map[string]bool{}
	for _, ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case EventSweepStarted:
			if ev.Sweep == "" || ev.Cases <= 0 {
				t.Fatalf("malformed sweep-started event: %+v", ev)
			}
			seenStart[ev.Sweep] = true
		case EventCaseEvaluated:
			if !seenStart[ev.Sweep] {
				t.Fatalf("case-evaluated before sweep-started for %q", ev.Sweep)
			}
			if ev.Case == "" || ev.Unit == "" {
				t.Fatalf("malformed case-evaluated event: %+v", ev)
			}
		case EventSweepWon:
			if !seenStart[ev.Sweep] {
				t.Fatalf("sweep-won before sweep-started for %q", ev.Sweep)
			}
			if ev.Value <= 0 || ev.Elapsed <= 0 {
				t.Fatalf("malformed sweep-won event: %+v", ev)
			}
		}
	}
	if counts[EventSweepStarted] != sweeps || counts[EventSweepWon] != sweeps {
		t.Fatalf("sweep events: started %d, won %d, want %d each",
			counts[EventSweepStarted], counts[EventSweepWon], sweeps)
	}
	if counts[EventCaseEvaluated] < sweeps { // at least one case per sweep
		t.Fatalf("case events: %d for %d sweeps", counts[EventCaseEvaluated], sweeps)
	}
}

func TestEmptyRegionWarning(t *testing.T) {
	// tinySystem has 8 MiB of L3; the DRAM region needs working sets of
	// at least 4x L3 = 32 MiB, so capping the sweep at 16 MiB leaves it
	// without a single case. That must be loud: a warning on the Result,
	// an EventRegionEmpty, a warning line in the Summary — not a roofline
	// silently missing its DRAM ceiling.
	var empties []Event
	sess, err := New(
		WithSystemSpec(tinySystem()),
		WithSpace([]core.Dims{{N: 512, M: 512, K: 128}}),
		WithTriadRange(16*units.KiB, 16*units.MiB),
		WithProgress(func(ev Event) {
			if ev.Kind == EventRegionEmpty {
				empties = append(empties, ev)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "DRAM") {
		t.Fatalf("warnings = %v, want one naming DRAM", res.Warnings)
	}
	if len(empties) != 1 || empties[0].Warning != res.Warnings[0] {
		t.Fatalf("region-empty events = %+v, want one matching %q", empties, res.Warnings[0])
	}
	for _, m := range res.Memory {
		if m.Region == "DRAM" {
			t.Fatalf("DRAM point present despite empty region: %+v", m)
		}
	}
	if !strings.Contains(res.Summary(), "warning: ") {
		t.Fatalf("summary must surface the warning:\n%s", res.Summary())
	}
}

// blockingWorkload plans a single one-case sweep whose kernel parks in
// Step until the test releases it. Cancellation tests get a deterministic
// mid-sweep hook this way: progress events are delivered asynchronously
// (a drainer goroutine), so cancelling from a callback can race with run
// completion, but a kernel blocked inside Step cannot finish early.
type blockingWorkload struct {
	entered chan struct{}
	release chan struct{}
}

func (w *blockingWorkload) Name() string { return "block" }

func (w *blockingWorkload) Plan(Target, Params) (Plan, error) {
	clock := vclock.NewVirtual()
	var p Plan
	p.Add("block/1s", sweep.Spec{
		Name:  "block",
		Clock: clock,
		Cases: []bench.Case{&blockCase{clock: clock, entered: w.entered, release: w.release}},
	}, Point{Compute: true, Sockets: 1})
	return p, nil
}

type blockCase struct {
	clock   *vclock.Virtual
	entered chan struct{}
	release chan struct{}
}

func (c *blockCase) Key() string          { return "block" }
func (c *blockCase) Config() bench.Config { return bench.DGEMMConfig{N: 1, M: 1, K: 1, Sockets: 1} }
func (c *blockCase) Describe() string     { return "blocking case" }
func (c *blockCase) Metric() bench.Metric { return bench.MetricFlops }
func (c *blockCase) NewInvocation(int) (bench.Instance, error) {
	return &blockInstance{c: c}, nil
}

type blockInstance struct{ c *blockCase }

func (i *blockInstance) Warmup() {}
func (i *blockInstance) Step() time.Duration {
	select {
	case i.c.entered <- struct{}{}:
	default:
	}
	<-i.c.release
	i.c.clock.Advance(time.Millisecond)
	return time.Millisecond
}
func (i *blockInstance) Work() float64 { return 1e9 }
func (i *blockInstance) Close()        {}

var (
	blockWL     = &blockingWorkload{}
	blockWLOnce sync.Once
)

// installBlockingWorkload registers the "block" workload once per process
// and arms fresh channels for this test.
func installBlockingWorkload(t *testing.T) *blockingWorkload {
	t.Helper()
	var regErr error
	blockWLOnce.Do(func() { regErr = RegisterWorkload(blockWL) })
	if regErr != nil {
		t.Fatal(regErr)
	}
	blockWL.entered = make(chan struct{}, 1)
	blockWL.release = make(chan struct{})
	return blockWL
}

func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	w := installBlockingWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess, err := New(WithSystemSpec(tinySystem()), WithWorkloads("block"))
	if err != nil {
		t.Fatal(err)
	}
	type runResult struct {
		res *Result
		err error
	}
	done := make(chan runResult, 1)
	go func() {
		res, err := sess.Run(ctx)
		done <- runResult{res, err}
	}()
	<-w.entered // a kernel execution is in flight: mid-sweep by construction
	cancel()
	close(w.release)
	got := <-done
	res, err := got.res, got.err
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err.Error() != context.Canceled.Error() {
		t.Fatalf("Run must return ctx.Err() itself, got %q", err)
	}
	if res != nil {
		t.Fatalf("canceled run produced a partial result: %+v", res)
	}
	// No sweep goroutine may outlive Run. Allow the runtime a moment to
	// retire finished goroutines before comparing. Polling the real clock
	// here is out-of-band test synchronization, not measurement.
	//rooflint:allow nodeterminism -- real deadline for a real-goroutine leak check
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		//rooflint:allow nodeterminism -- same leak-check deadline poll
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond) //rooflint:allow nodeterminism -- back-off between leak-check polls
	}
}

func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := New(tinySessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSessionRerunDeterministic(t *testing.T) {
	sess, err := New(tinySessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-run diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

func TestSessionCaseShardInvariance(t *testing.T) {
	serialSess, err := New(tinySessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialSess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		sess, err := New(append(tinySessionOptions(), WithCaseShards(shards))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// The tuned points — winning configurations and values — are
		// shard-count-invariant. SearchTime is not compared: a sharded
		// schedule may prune differently (only ever less), so its summed
		// virtual cost may legitimately differ.
		if !reflect.DeepEqual(res.Compute, serial.Compute) {
			t.Fatalf("shards=%d: compute points diverged:\n%+v\nserial:\n%+v", shards, res.Compute, serial.Compute)
		}
		if !reflect.DeepEqual(res.Memory, serial.Memory) {
			t.Fatalf("shards=%d: memory points diverged:\n%+v\nserial:\n%+v", shards, res.Memory, serial.Memory)
		}
		if len(res.Warnings) != len(serial.Warnings) {
			t.Fatalf("shards=%d: warnings %v, serial %v", shards, res.Warnings, serial.Warnings)
		}
	}
}

func TestAssembleResultFlagsSalvagedWinner(t *testing.T) {
	// A sweep whose every configuration was outer-pruned reports a
	// truncated partial mean as its best; the session must say so instead
	// of letting the salvage value pose as a measurement.
	out := &bench.Outcome{
		Key:    "dgemm/1/512x512x128",
		Config: bench.DGEMMConfig{N: 512, M: 512, K: 128, Sockets: 1},
		Metric: bench.MetricFlops,
		Mean:   1e9,
		Pruned: true,
	}
	sweeps := []sweep.Outcome{{
		Name:   "dgemm-1",
		Result: &core.Result{Best: out, BestPruned: true, All: []*bench.Outcome{out}, PrunedCount: 1},
		Best:   out.Config,
	}}
	points := []Point{{Compute: true, Sockets: 1}}
	res, err := assembleResult(&Result{SystemName: "test", Engine: "sim:test"}, sweeps, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "outer-pruned") {
		t.Fatalf("warnings = %v, want one flagging the salvaged winner", res.Warnings)
	}
	if !strings.Contains(res.Summary(), "outer-pruned") {
		t.Fatalf("summary must surface the salvage warning:\n%s", res.Summary())
	}
}

func TestWorkloadSelection(t *testing.T) {
	sess, err := New(append(tinySessionOptions(), WithWorkloads("dgemm"))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 || len(res.Memory) != 0 {
		t.Fatalf("dgemm-only session: %d compute, %d memory points", len(res.Compute), len(res.Memory))
	}
	names := WorkloadNames()
	for _, want := range []string{"dgemm", "triad"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("built-in workload %q not registered: %v", want, names)
		}
	}
}

func TestRegisterWorkloadRejectsDuplicate(t *testing.T) {
	if err := RegisterWorkload(dupWorkload{}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterWorkload(dupWorkload{}); err == nil {
		t.Fatal("duplicate registration must error")
	}
}

type dupWorkload struct{}

func (dupWorkload) Name() string { return "test-dup" }
func (dupWorkload) Plan(Target, Params) (Plan, error) {
	return Plan{}, fmt.Errorf("never planned")
}
