package rooftune

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		opts    []Option
		wantErr string
	}{
		{"no target", nil, "no target"},
		{"two targets", []Option{WithSystem("Gold 6148"), WithNative()}, "mutually exclusive"},
		{"native then system", []Option{WithNative(), WithSystem("Gold 6148")}, "mutually exclusive"},
		{"unknown system", []Option{WithSystem("warp-drive")}, "warp-drive"},
		{"invalid system spec", []Option{WithSystemSpec(hw.System{Name: "broken"})}, "non-positive"},
		{"empty space", []Option{WithSystem("Gold 6148"), WithSpace(nil)}, "empty search space"},
		{"negative threads", []Option{WithNative(), WithThreads(-2)}, "negative thread count"},
		{"inverted triad bounds", []Option{
			WithSystem("Gold 6148"), WithTriadRange(8*units.MiB, 2*units.MiB),
		}, "inverted TRIAD"},
		{"triad lo above default hi", []Option{
			WithSystem("Gold 6148"), WithTriadRange(900*units.MiB, 0),
		}, "inverted TRIAD"},
		{"unknown workload", []Option{WithSystem("Gold 6148"), WithWorkloads("spmv")}, `"spmv"`},
		{"empty workloads", []Option{WithSystem("Gold 6148"), WithWorkloads()}, "no workloads"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) must error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func tinySessionOptions() []Option {
	return []Option{
		WithSystemSpec(tinySystem()),
		WithSpace([]core.Dims{
			{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128},
			{N: 2048, M: 2048, K: 128},
		}),
		WithTriadRange(16*units.KiB, 256*units.MiB),
	}
}

func TestSessionEvents(t *testing.T) {
	var events []Event
	sess, err := New(append(tinySessionOptions(), WithProgress(func(ev Event) {
		events = append(events, ev)
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sweeps := len(res.Compute) + len(res.Memory)
	counts := map[EventKind]int{}
	seenStart := map[string]bool{}
	for _, ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case EventSweepStarted:
			if ev.Sweep == "" || ev.Cases <= 0 {
				t.Fatalf("malformed sweep-started event: %+v", ev)
			}
			seenStart[ev.Sweep] = true
		case EventCaseEvaluated:
			if !seenStart[ev.Sweep] {
				t.Fatalf("case-evaluated before sweep-started for %q", ev.Sweep)
			}
			if ev.Case == "" || ev.Unit == "" {
				t.Fatalf("malformed case-evaluated event: %+v", ev)
			}
		case EventSweepWon:
			if !seenStart[ev.Sweep] {
				t.Fatalf("sweep-won before sweep-started for %q", ev.Sweep)
			}
			if ev.Value <= 0 || ev.Elapsed <= 0 {
				t.Fatalf("malformed sweep-won event: %+v", ev)
			}
		}
	}
	if counts[EventSweepStarted] != sweeps || counts[EventSweepWon] != sweeps {
		t.Fatalf("sweep events: started %d, won %d, want %d each",
			counts[EventSweepStarted], counts[EventSweepWon], sweeps)
	}
	if counts[EventCaseEvaluated] < sweeps { // at least one case per sweep
		t.Fatalf("case events: %d for %d sweeps", counts[EventCaseEvaluated], sweeps)
	}
}

func TestEmptyRegionWarning(t *testing.T) {
	// tinySystem has 8 MiB of L3; the DRAM region needs working sets of
	// at least 4x L3 = 32 MiB, so capping the sweep at 16 MiB leaves it
	// without a single case. That must be loud: a warning on the Result,
	// an EventRegionEmpty, a warning line in the Summary — not a roofline
	// silently missing its DRAM ceiling.
	var empties []Event
	sess, err := New(
		WithSystemSpec(tinySystem()),
		WithSpace([]core.Dims{{N: 512, M: 512, K: 128}}),
		WithTriadRange(16*units.KiB, 16*units.MiB),
		WithProgress(func(ev Event) {
			if ev.Kind == EventRegionEmpty {
				empties = append(empties, ev)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "DRAM") {
		t.Fatalf("warnings = %v, want one naming DRAM", res.Warnings)
	}
	if len(empties) != 1 || empties[0].Warning != res.Warnings[0] {
		t.Fatalf("region-empty events = %+v, want one matching %q", empties, res.Warnings[0])
	}
	for _, m := range res.Memory {
		if m.Region == "DRAM" {
			t.Fatalf("DRAM point present despite empty region: %+v", m)
		}
	}
	if !strings.Contains(res.Summary(), "warning: ") {
		t.Fatalf("summary must surface the warning:\n%s", res.Summary())
	}
}

func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once bool
	sess, err := New(append(tinySessionOptions(), WithProgress(func(ev Event) {
		// Cancel from inside the run, after the first evaluated case:
		// mid-sweep by construction.
		if ev.Kind == EventCaseEvaluated && !once {
			once = true
			cancel()
		}
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err.Error() != context.Canceled.Error() {
		t.Fatalf("Run must return ctx.Err() itself, got %q", err)
	}
	if res != nil {
		t.Fatalf("canceled run produced a partial result: %+v", res)
	}
	// No sweep goroutine may outlive Run. Allow the runtime a moment to
	// retire finished goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := New(tinySessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSessionRerunDeterministic(t *testing.T) {
	sess, err := New(tinySessionOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-run diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

func TestWorkloadSelection(t *testing.T) {
	sess, err := New(append(tinySessionOptions(), WithWorkloads("dgemm"))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 || len(res.Memory) != 0 {
		t.Fatalf("dgemm-only session: %d compute, %d memory points", len(res.Compute), len(res.Memory))
	}
	names := WorkloadNames()
	for _, want := range []string{"dgemm", "triad"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("built-in workload %q not registered: %v", want, names)
		}
	}
}

func TestRegisterWorkloadRejectsDuplicate(t *testing.T) {
	if err := RegisterWorkload(dupWorkload{}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterWorkload(dupWorkload{}); err == nil {
		t.Fatal("duplicate registration must error")
	}
}

type dupWorkload struct{}

func (dupWorkload) Name() string { return "test-dup" }
func (dupWorkload) Plan(Target, Params) (Plan, error) {
	return Plan{}, fmt.Errorf("never planned")
}
