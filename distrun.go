package rooftune

import (
	"context"
	"errors"
	"fmt"
	"time"

	distv1 "rooftune/dist/v1"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/sweep"
)

// This file is the distributed tier's seam through the Session: RunDist
// drives the normal plan-graph schedule but delegates each node to a
// NodeExec (the coordinator side), and RunNode executes exactly one
// plan node and returns its wire outcome (the worker side). Both reuse
// the same planning, validation, runner and result assembly as Run, so
// a distributed run that applies the same seeds produces a Result
// byte-identical to a local one.

// ErrExecLocal, returned (or wrapped) by a NodeExec, tells RunDist to
// run that node in-process instead — the graceful fallback when no
// remote worker is live. The node runs with the exact seed and shard
// policy a plain Run would have used, so a partially remote run is
// still bit-identical to a local one.
var ErrExecLocal = errors.New("rooftune: node executor unavailable; running locally")

// NodeExec executes one plan-graph node somewhere else — the
// distributed coordinator's dispatch hook. nodeID names the node;
// seedValue is the incumbent pre-seed RunDist's schedule derived from
// the node's dependency (0: unseeded), in metric base units. The
// returned outcome must echo nodeID. NodeExec is called from concurrent
// node goroutines and must be safe for concurrent use.
type NodeExec func(ctx context.Context, nodeID string, seedValue float64) (*distv1.NodeOutcome, error)

// SharedBound is a monotone incumbent bound that can be shared across
// processes: offers only ever raise it (CAS-max over measured means),
// so pushes may arrive late, duplicated or reordered without affecting
// correctness — the PR 3 incumbent protocol, exposed for the
// distributed tier. A worker wires one into a running node via RunNode
// and applies bounds pushed to it mid-sweep.
type SharedBound struct {
	inc *bench.AtomicIncumbent
}

// NewSharedBound returns an empty bound.
func NewSharedBound() *SharedBound {
	return &SharedBound{inc: bench.NewAtomicIncumbent()}
}

// Offer raises the bound to v if v beats it; lower or NaN offers are
// no-ops. Safe for concurrent use.
func (b *SharedBound) Offer(v float64) { b.inc.Offer(v) }

// Bound returns the current bound in metric base units, and whether any
// offer has been applied yet.
func (b *SharedBound) Bound() (float64, bool) {
	v := b.inc.Bound()
	return v, v != bench.NoBest
}

// RunDist plans the session's campaign and executes its plan graph like
// Run, but delegates each node's execution to exec — the distributed
// coordinator's dispatch hook. The topological schedule and seeding
// rules are identical to a local run: a dependent node's exec call
// happens only after its dependency's measured winner arrived, carrying
// exactly the seed a local RunPlan would have applied, so the merged
// Result — winners, warnings, search-cost accounting, Summary — is
// byte-identical to Run's whenever exec faithfully executes the nodes
// (Session.RunNode on a worker is exactly that). A node whose exec
// returns ErrExecLocal falls back to in-process execution; any other
// error fails the run like a local sweep failure. The one-Run-at-a-time
// contract applies (ErrConcurrentRun).
func (s *Session) RunDist(ctx context.Context, exec NodeExec) (*Result, error) {
	if exec == nil {
		return nil, fmt.Errorf("rooftune: RunDist: nil NodeExec")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.running.CompareAndSwap(false, true) {
		return nil, ErrConcurrentRun
	}
	defer s.running.Store(false)
	emit, stopEvents := s.startEvents()
	defer stopEvents()

	target, res := s.target()
	nodes, points, err := s.plan(target, res, emit)
	if err != nil {
		return nil, err
	}
	if !s.cfg.chain {
		for i := range nodes {
			nodes[i].SeedFrom = ""
		}
	}
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		index[n.ID] = i
	}

	runner := s.newRunner(nodes, emit)
	runner.Exec = func(ctx context.Context, n sweep.Node, _ string, seedValue float64) (sweep.Outcome, error) {
		no, err := exec(ctx, n.ID, seedValue)
		if err != nil {
			if errors.Is(err, ErrExecLocal) {
				return sweep.Outcome{}, sweep.ErrExecUnavailable
			}
			return sweep.Outcome{}, err
		}
		return outcomeFromWire(nodes[index[n.ID]], no)
	}

	outs, err := runner.RunPlan(ctx, nodes)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return nil, cerr
		}
		return nil, fmt.Errorf("rooftune: %w", err)
	}
	return assembleResult(res, outs, points)
}

// RunNode plans the session's campaign and executes exactly one of its
// plan-graph nodes — the worker side of the distributed tier. The node
// runs precisely as a local Run executing the whole graph would have
// run it (same validation, shard policy and budget), with its incumbent
// pre-seeded by seedValue (0: unseeded) — the coordinator supplies the
// dependency winner the local schedule would have. bound, when non-nil,
// is additionally wired into the search so bounds pushed to it
// mid-sweep prune like local incumbent discoveries (monotone, so pushes
// are harmless whenever they arrive). The one-Run-at-a-time contract
// applies (ErrConcurrentRun).
func (s *Session) RunNode(ctx context.Context, nodeID string, seedValue float64, bound *SharedBound) (*distv1.NodeOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.running.CompareAndSwap(false, true) {
		return nil, ErrConcurrentRun
	}
	defer s.running.Store(false)
	emit, stopEvents := s.startEvents()
	defer stopEvents()

	target, res := s.target()
	nodes, _, err := s.plan(target, res, emit)
	if err != nil {
		return nil, err
	}
	if !s.cfg.chain {
		for i := range nodes {
			nodes[i].SeedFrom = ""
		}
	}
	runner := s.newRunner(nodes, emit)
	var inc *bench.AtomicIncumbent
	if bound != nil {
		inc = bound.inc
	}
	out, err := runner.RunNode(ctx, nodes, nodeID, seedValue, inc)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return nil, cerr
		}
		return nil, fmt.Errorf("rooftune: %w", err)
	}
	return outcomeToWire(&out)
}

// outcomeToWire renders a finished node as its dist/v1 wire outcome:
// exactly the fields Result assembly and downstream seeding consume.
func outcomeToWire(out *sweep.Outcome) (*distv1.NodeOutcome, error) {
	res := out.Result
	if res == nil || res.Best == nil {
		return nil, fmt.Errorf("rooftune: node %s finished without a winner", out.ID)
	}
	no := &distv1.NodeOutcome{
		Schema:       distv1.Schema,
		NodeID:       out.ID,
		Desc:         res.Best.Describe,
		Value:        res.BestValue(),
		BestPruned:   res.BestPruned,
		ElapsedNs:    int64(res.Elapsed),
		PrunedCount:  res.PrunedCount,
		TotalSamples: res.TotalSamples,
	}
	if out.Best != nil {
		data, err := bench.MarshalConfig(out.Best)
		if err != nil {
			return nil, fmt.Errorf("rooftune: node %s: encode winner: %w", out.ID, err)
		}
		no.Winner = data
	}
	return no, nil
}

// outcomeFromWire rebuilds a sweep outcome from a node's wire outcome,
// for merging into the plan schedule. The rebuilt result carries the
// winner and the search-cost accounting — everything assembleResult and
// RunPlan's seeding read — but not the per-case outcome list, which
// never crosses the wire.
func outcomeFromWire(n sweep.Node, no *distv1.NodeOutcome) (sweep.Outcome, error) {
	if no == nil {
		return sweep.Outcome{}, fmt.Errorf("rooftune: node %s: executor returned no outcome", n.ID)
	}
	if no.NodeID != n.ID {
		return sweep.Outcome{}, fmt.Errorf("rooftune: node %s: executor returned outcome for node %s", n.ID, no.NodeID)
	}
	if len(n.Spec.Cases) == 0 {
		return sweep.Outcome{}, fmt.Errorf("rooftune: node %s: empty case list", n.ID)
	}
	best := &bench.Outcome{
		Describe: no.Desc,
		Mean:     no.Value,
		Metric:   n.Spec.Cases[0].Metric(),
	}
	out := sweep.Outcome{
		ID: n.ID,
		Result: &core.Result{
			Best:         best,
			BestPruned:   no.BestPruned,
			Elapsed:      time.Duration(no.ElapsedNs),
			PrunedCount:  no.PrunedCount,
			TotalSamples: no.TotalSamples,
		},
	}
	if len(no.Winner) > 0 {
		cfg, err := bench.UnmarshalConfig(no.Winner)
		if err != nil {
			return sweep.Outcome{}, fmt.Errorf("rooftune: node %s: decode winner: %w", n.ID, err)
		}
		best.Config = cfg
		out.Best = cfg
	}
	return out, nil
}
