// Command benchreport distills a `go test -json -bench` stream into the
// benchstat-compatible text format: the goos/goarch/pkg/cpu preamble and
// the Benchmark result lines, nothing else. CI tees the raw JSON to the
// BENCH_pr artifact and runs this over it, so each PR publishes both the
// machine-readable stream and a diffable text summary — the seed of the
// repository's performance trajectory.
//
// With -baseline it additionally diffs the run against a second stream
// (the committed BENCH_main.json baseline): each benchmark present in
// both is compared on ns/op and the delta table goes to stdout. A
// regression beyond -threshold is a failure — it is annotated as a
// GitHub Actions ::error:: and the command exits nonzero. One-iteration
// runs on shared runners are noisy, so the threshold defaults
// generously; -warn-only is the escape hatch that demotes regressions
// back to ::warning:: annotations with a zero exit, for branches where
// a slowdown is expected and the baseline refresh lands separately.
//
//	go test -json -bench . -benchtime 1x -run '^$' ./... > BENCH_pr.json
//	go run ./cmd/benchreport -in BENCH_pr.json -out BENCH_pr.txt
//	go run ./cmd/benchreport -in BENCH_pr.json -baseline BENCH_main.json -threshold 0.25
//	go run ./cmd/benchreport -in BENCH_pr.json -baseline BENCH_main.json -warn-only
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's record that benchmarking emits.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	in := flag.String("in", "", "test2json input file (default stdin)")
	out := flag.String("out", "", "benchstat-format output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline test2json stream to diff ns/op against")
	threshold := flag.Float64("threshold", 0.25, "relative ns/op regression beyond which the diff fails")
	warnOnly := flag.Bool("warn-only", false, "demote regressions beyond -threshold to warnings instead of failing")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	lines, err := resultLines(r)
	if err != nil {
		fail(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := report(lines, w); err != nil {
		fail(err)
	}

	if *baseline != "" {
		bf, err := os.Open(*baseline)
		if err != nil {
			fail(err)
		}
		defer bf.Close()
		baseLines, err := resultLines(bf)
		if err != nil {
			fail(fmt.Errorf("baseline: %w", err))
		}
		regressions, err := diff(parseUnit(baseLines, "ns/op"), parseUnit(lines, "ns/op"), "ns/op", *threshold, *warnOnly, os.Stdout)
		if err != nil {
			fail(err)
		}
		// Benchmarks that b.ReportAllocs() are additionally gated on
		// allocs/op — the noalloc analyzer's runtime counterpart. The
		// counter is deterministic, so the same threshold is generous.
		if baseAllocs := parseUnit(baseLines, "allocs/op"); len(baseAllocs) > 0 {
			n, err := diff(baseAllocs, parseUnit(lines, "allocs/op"), "allocs/op", *threshold, *warnOnly, os.Stdout)
			if err != nil {
				fail(err)
			}
			regressions += n
		}
		if regressions > 0 && !*warnOnly {
			fail(fmt.Errorf("%d regression(s) beyond %.0f%% — refresh BENCH_main.json if deliberate, or rerun with -warn-only",
				regressions, *threshold*100))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}

// resultLines reassembles each package's output stream (test2json splits
// a single benchmark result line across several events, and packages
// interleave), then keeps the preamble lines benchstat keys results on
// and the result lines themselves, in package order. Corrupt JSON fails
// loudly rather than producing a silently truncated report.
func resultLines(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var order []string
	bufs := map[string]*strings.Builder{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("malformed test2json line %q: %v", line, err)
		}
		if ev.Action != "output" {
			continue
		}
		buf, ok := bufs[ev.Package]
		if !ok {
			buf = &strings.Builder{}
			bufs[ev.Package] = buf
			order = append(order, ev.Package)
		}
		buf.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range order {
		for _, txt := range strings.Split(bufs[pkg].String(), "\n") {
			if keep(txt) {
				out = append(out, txt)
			}
		}
	}
	return out, nil
}

// report writes the benchstat-format lines.
func report(lines []string, w io.Writer) error {
	benches := 0
	for _, txt := range lines {
		if strings.HasPrefix(txt, "Benchmark") {
			benches++
		}
		fmt.Fprintln(w, txt)
	}
	if benches == 0 {
		return fmt.Errorf("no benchmark results in input — did the bench run execute?")
	}
	return nil
}

// keep reports whether a test output line belongs in a benchstat file.
func keep(line string) bool {
	for _, prefix := range []string{"goos:", "goarch:", "pkg:", "cpu:"} {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	// Result lines ("BenchmarkMulChunked-8 ...") have at least a name and
	// an iteration count; the bare "BenchmarkX" progress echo does not.
	return strings.HasPrefix(line, "Benchmark") && len(strings.Fields(line)) >= 2
}

// cpuSuffix strips the trailing -GOMAXPROCS from a benchmark name so that
// runs from hosts with different core counts still key together.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseUnit extracts "pkg.Benchmark" -> the named measure ("ns/op",
// "allocs/op", ...) from benchstat-format result lines, keying on the
// preceding pkg: preamble so equally named benchmarks in different
// packages never collide. A benchmark that appears several times keeps
// its last value.
func parseUnit(lines []string, unit string) map[string]float64 {
	out := map[string]float64{}
	pkg := ""
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != unit {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			name := cpuSuffix.ReplaceAllString(fields[0], "")
			if pkg != "" {
				name = pkg + "." + name
			}
			out[name] = v
		}
	}
	return out
}

// diff prints the baseline comparison, emits a GitHub annotation per
// regression beyond the threshold, and returns how many there were so
// main can turn them into a failing exit. Benchmarks present on only
// one side are listed, not treated as regressions.
func diff(base, cur map[string]float64, unit string, threshold float64, warnOnly bool, w io.Writer) (int, error) {
	if len(base) == 0 {
		return 0, fmt.Errorf("baseline contains no benchmark results")
	}
	var names []string
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\nbaseline comparison on %s (threshold %+.0f%%):\n", unit, threshold*100)
	fmt.Fprintf(w, "%-48s %14s %14s %8s\n", "benchmark", "base "+unit, "new "+unit, "delta")
	regressions := 0
	for _, name := range names {
		b, c := base[name], cur[name]
		var delta float64
		switch {
		case b != 0:
			delta = (c - b) / b
		case c != 0:
			// A zero baseline (an allocation-free benchmark) regressing
			// to nonzero is always beyond any relative threshold.
			delta = math.Inf(1)
		}
		mark := ""
		if delta > threshold {
			mark = "  <-- regression"
			regressions++
			// GitHub Actions annotation on the job summary. ::error::
			// matches the failing exit; -warn-only keeps the old
			// advisory ::warning:: behavior.
			level := "error"
			if warnOnly {
				level = "warning"
			}
			fmt.Fprintf(w, "::%s title=bench regression::%s worsened %.1f%% (%.0f -> %.0f %s, threshold %.0f%%)\n",
				level, name, delta*100, b, c, unit, threshold*100)
		}
		fmt.Fprintf(w, "%-48s %14.0f %14.0f %+7.1f%%%s\n", name, b, c, delta*100, mark)
	}
	var added, removed []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, name := range added {
		fmt.Fprintf(w, "%-48s %14s %14.0f      new\n", name, "-", cur[name])
	}
	for _, name := range removed {
		fmt.Fprintf(w, "%-48s %14.0f %14s  removed\n", name, base[name], "-")
	}
	fmt.Fprintf(w, "%d benchmark(s) compared, %d regression(s) beyond %.0f%%\n",
		len(names), regressions, threshold*100)
	return regressions, nil
}
