// Command benchreport distills a `go test -json -bench` stream into the
// benchstat-compatible text format: the goos/goarch/pkg/cpu preamble and
// the Benchmark result lines, nothing else. CI tees the raw JSON to the
// BENCH_pr artifact and runs this over it, so each PR publishes both the
// machine-readable stream and a diffable text summary — the seed of the
// repository's performance trajectory.
//
//	go test -json -bench . -benchtime 1x -run '^$' ./... > BENCH_pr.json
//	go run ./cmd/benchreport -in BENCH_pr.json -out BENCH_pr.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// event is the subset of test2json's record that benchmarking emits.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	in := flag.String("in", "", "test2json input file (default stdin)")
	out := flag.String("out", "", "benchstat-format output file (default stdout)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := report(r, w); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}

// report reassembles each package's output stream (test2json splits a
// single benchmark result line across several events, and packages
// interleave), then keeps the preamble lines benchstat keys results on
// and the result lines themselves. Corrupt JSON fails loudly rather
// than producing a silently truncated report.
func report(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var order []string
	bufs := map[string]*strings.Builder{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("malformed test2json line %q: %v", line, err)
		}
		if ev.Action != "output" {
			continue
		}
		buf, ok := bufs[ev.Package]
		if !ok {
			buf = &strings.Builder{}
			bufs[ev.Package] = buf
			order = append(order, ev.Package)
		}
		buf.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	benches := 0
	for _, pkg := range order {
		for _, txt := range strings.Split(bufs[pkg].String(), "\n") {
			if keep(txt) {
				if strings.HasPrefix(txt, "Benchmark") {
					benches++
				}
				fmt.Fprintln(w, txt)
			}
		}
	}
	if benches == 0 {
		return fmt.Errorf("no benchmark results in input — did the bench run execute?")
	}
	return nil
}

// keep reports whether a test output line belongs in a benchstat file.
func keep(line string) bool {
	for _, prefix := range []string{"goos:", "goarch:", "pkg:", "cpu:"} {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	// Result lines ("BenchmarkMulChunked-8 ...") have at least a name and
	// an iteration count; the bare "BenchmarkX" progress echo does not.
	return strings.HasPrefix(line, "Benchmark") && len(strings.Fields(line)) >= 2
}
