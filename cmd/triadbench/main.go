// Command triadbench runs the STREAM TRIAD benchmark for one working-set
// size — the memory-side benchmark program of the paper (§III-B).
//
// Examples:
//
//	triadbench -system 2650v4 -bytes 12MiB -sockets 1
//	triadbench -system "Gold 6148" -bytes 768MiB -sockets 2 -affinity spread
//	triadbench -native -bytes 64MiB
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func main() {
	var (
		system      = flag.String("system", "2650v4", "simulated system name")
		native      = flag.Bool("native", false, "run the real Go kernel instead of simulating")
		sizeStr     = flag.String("bytes", "12MiB", "total working set (three vectors), e.g. 3KiB, 768MiB")
		affinityStr = flag.String("affinity", "close", "thread placement: close or spread")
		sockets     = flag.Int("sockets", 1, "socket count (simulated engines)")
		invocations = flag.Int("invocations", 10, "outer-loop repetitions")
		iterations  = flag.Int("iterations", 200, "inner-loop cap")
		timeout     = flag.Duration("t", 10*time.Second, "measured-time budget")
		confidence  = flag.Bool("confidence", true, "enable stop condition 3 (CI convergence)")
		seed        = flag.Uint64("seed", 1021, "noise seed (simulated engines)")
		threads     = flag.Int("threads", 0, "native parallelism (default GOMAXPROCS)")
	)
	flag.Parse()

	size, err := units.ParseByteSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triadbench:", err)
		os.Exit(2)
	}
	elems := int(size / 24)
	if elems < 1 {
		fmt.Fprintln(os.Stderr, "triadbench: working set smaller than one element (24 bytes)")
		os.Exit(2)
	}
	aff := hw.AffinityClose
	if *affinityStr == "spread" {
		aff = hw.AffinitySpread
	} else if *affinityStr != "close" {
		fmt.Fprintf(os.Stderr, "triadbench: unknown affinity %q\n", *affinityStr)
		os.Exit(2)
	}

	budget := bench.DefaultBudget()
	budget.Invocations = *invocations
	budget.MaxIterations = *iterations
	budget.MaxTime = *timeout
	budget.UseConfidence = *confidence

	if *native {
		eng := bench.NewNativeEngine(*threads)
		run(bench.NewEvaluator(eng.Clock, budget), eng.TriadCase(elems))
		return
	}
	sys, err := hw.Get(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triadbench:", err)
		os.Exit(1)
	}
	eng := bench.NewSimEngine(sys, *seed)
	run(bench.NewEvaluator(eng.Clock, budget), eng.TriadCase(elems, aff, *sockets))
}

func run(eval *bench.Evaluator, c bench.Case) {
	out, err := eval.Evaluate(context.Background(), c, bench.None)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triadbench:", err)
		os.Exit(1)
	}
	fmt.Printf("configuration: %s\n", out.Describe)
	for i, inv := range out.Invocations {
		fmt.Printf("  invocation %2d: mean %8.2f GB/s  (n=%3d, measured %8.3fs, stop: %s)\n",
			i, out.Metric.Scale(inv.Mean), inv.Samples, inv.Measured.Seconds(), inv.Reason)
	}
	fmt.Printf("result: %.2f %s over %d invocations, %d samples, %.3fs total\n",
		out.Metric.Scale(out.Mean), out.Metric.Unit(), len(out.Invocations),
		out.TotalSamples, out.Elapsed.Seconds())
}
