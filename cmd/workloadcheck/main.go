// Command workloadcheck runs every registered workload through the
// registry's conformance contract on both tuning targets — a simulated
// paper system and the native host — and exits non-zero on any
// violation. CI runs it as the workload-conformance job, so a future
// workload package cannot register half-implemented: planning failures,
// empty sweeps, duplicate case keys, nil configs and mislanded points
// are caught at merge time, not inside a user's session.
//
//	go run ./cmd/workloadcheck
package main

import (
	"fmt"
	"os"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

func main() {
	names := rooftune.WorkloadNames()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "workloadcheck: no workloads registered")
		os.Exit(1)
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			// The registry rejects duplicates; reaching this means the
			// registry itself broke.
			fmt.Fprintf(os.Stderr, "workloadcheck: duplicate registration %q\n", name)
			os.Exit(1)
		}
		seen[name] = true
	}

	sys, err := hw.Get("Gold 6148")
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloadcheck:", err)
		os.Exit(1)
	}
	// Planning-only shapes: Plan builds cases but never executes kernels,
	// so these sizes keep even the native matrix synthesis instant. All
	// four TRIAD residency levels are requested so the per-level plan
	// graph — IDs, SeedFrom chains — goes through the conformance
	// contract too (native targets use the cache/DRAM split regardless).
	params := workload.Params{
		Seed:          1021,
		Space:         []core.Dims{{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128}},
		TriadLo:       3 * units.KiB,
		TriadHi:       768 * units.MiB,
		TriadLevels:   hw.CacheLevels(),
		AssumedLLC:    32 * units.MiB,
		Threads:       2,
		SpMVN:         1 << 14,
		SpMVNNZPerRow: 8,
		StencilNX:     512,
		StencilNY:     512,
	}
	targets := []struct {
		name string
		t    workload.Target
	}{
		{"simulated " + sys.Name, workload.Target{Sys: &sys}},
		{"native", workload.Target{Native: bench.NewNativeEngine(params.Threads)}},
	}

	failures := 0
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloadcheck:", err)
			failures++
			continue
		}
		for _, tgt := range targets {
			errs := workload.Conform(w, tgt.t, params)
			for _, cerr := range errs {
				fmt.Fprintf(os.Stderr, "workloadcheck: %s target: %v\n", tgt.name, cerr)
			}
			failures += len(errs)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "workloadcheck: %d violation(s) across %d workload(s)\n", failures, len(names))
		os.Exit(1)
	}
	fmt.Printf("workloadcheck: %d workload(s) conformant on both targets: %v\n", len(names), names)
}
