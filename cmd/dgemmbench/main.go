// Command dgemmbench runs the DGEMM benchmark for one configuration —
// the benchmark-program unit that the autotuner's outer invocation loop
// re-executes (paper §III-A). It prints per-invocation means, the
// confidence interval and the stop reason, and exits non-zero on error.
//
// Examples:
//
//	dgemmbench -system 2650v4 -n 1000 -m 4096 -k 128 -sockets 1
//	dgemmbench -native -n 512 -m 512 -k 256 -invocations 3
//	dgemmbench -system 2695v4 -n 2000 -m 4096 -k 128 -confidence -t 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
)

func main() {
	var (
		system      = flag.String("system", "2650v4", "simulated system name")
		native      = flag.Bool("native", false, "run the real Go kernel instead of simulating")
		n           = flag.Int("n", 1000, "rows of A and C")
		m           = flag.Int("m", 1000, "columns of B and C")
		k           = flag.Int("k", 1000, "columns of A / rows of B")
		sockets     = flag.Int("sockets", 1, "socket count (simulated engines)")
		invocations = flag.Int("invocations", 10, "outer-loop repetitions")
		iterations  = flag.Int("iterations", 200, "inner-loop cap (stop condition 2)")
		timeout     = flag.Duration("t", 10*time.Second, "measured-time budget (stop condition 1)")
		errInv      = flag.Float64("error", 100, "inverse CI half-width target (100 -> ±1%)")
		confidence  = flag.Bool("confidence", false, "enable stop condition 3 (CI convergence)")
		seed        = flag.Uint64("seed", 1021, "noise seed (simulated engines)")
		threads     = flag.Int("threads", 0, "native parallelism (default GOMAXPROCS)")
	)
	flag.Parse()

	budget := bench.DefaultBudget()
	budget.Invocations = *invocations
	budget.MaxIterations = *iterations
	budget.MaxTime = *timeout
	budget.ErrorInverse = *errInv
	budget.UseConfidence = *confidence

	if *native {
		eng := bench.NewNativeEngine(*threads)
		run(bench.NewEvaluator(eng.Clock, budget), eng.DGEMMCase(*n, *m, *k))
		return
	}
	sys, err := hw.Get(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgemmbench:", err)
		os.Exit(1)
	}
	eng := bench.NewSimEngine(sys, *seed)
	run(bench.NewEvaluator(eng.Clock, budget), eng.DGEMMCase(*n, *m, *k, *sockets))
}

func run(eval *bench.Evaluator, c bench.Case) {
	out, err := eval.Evaluate(context.Background(), c, bench.None)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgemmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("configuration: %s\n", out.Describe)
	for i, inv := range out.Invocations {
		fmt.Printf("  invocation %2d: mean %8.2f GFLOP/s  (n=%3d, measured %8.3fs, stop: %s)\n",
			i, out.Metric.Scale(inv.Mean), inv.Samples, inv.Measured.Seconds(), inv.Reason)
	}
	fmt.Printf("result: %.2f %s over %d invocations, %d samples, %.3fs total\n",
		out.Metric.Scale(out.Mean), out.Metric.Unit(), len(out.Invocations),
		out.TotalSamples, out.Elapsed.Seconds())
	if len(out.Invocations) > 0 {
		last := out.Invocations[len(out.Invocations)-1]
		fmt.Printf("final invocation 99%% CI: [%.2f, %.2f] %s\n",
			out.Metric.Scale(last.CI.Lower), out.Metric.Scale(last.CI.Upper), out.Metric.Unit())
	}
}
