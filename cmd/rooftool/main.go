// Command rooftool autotunes the DGEMM and TRIAD benchmarks for a target
// system and emits its empirical Roofline model — the end-to-end tool the
// paper describes.
//
// Examples:
//
//	rooftool -system "Gold 6148"              # simulate a paper system
//	rooftool -native                          # tune the host with real kernels
//	rooftool -system 2650v4 -format svg -out roofline.svg
//	rooftool -list                            # list known systems
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rooftune"
	"rooftune/internal/hw"
)

func main() {
	var (
		system  = flag.String("system", "Gold 6148", "simulated system name (see -list)")
		native  = flag.Bool("native", false, "tune the host with real Go kernels instead of simulating")
		seed    = flag.Uint64("seed", 1021, "noise seed for simulated engines")
		format  = flag.String("format", "text", "output format: text, ascii, svg, gnuplot, summary, json")
		out     = flag.String("out", "", "output file (default stdout)")
		threads = flag.Int("threads", 0, "native parallelism (default GOMAXPROCS)")
		list    = flag.Bool("list", false, "list known systems and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("known systems:", strings.Join(hw.Known(), ", "))
		return
	}

	opt := &rooftune.Options{Seed: *seed, Threads: *threads}
	var (
		res *rooftune.Result
		err error
	)
	if *native {
		res, err = rooftune.Native(opt)
	} else {
		res, err = rooftune.Simulated(*system, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rooftool:", err)
		os.Exit(1)
	}

	var rendered string
	switch *format {
	case "text":
		rendered = res.Summary() + "\n" + res.Roofline.RenderASCII(76, 20)
	case "ascii":
		rendered = res.Roofline.RenderASCII(76, 20)
	case "svg":
		rendered = res.Roofline.RenderSVG(800, 560)
	case "gnuplot":
		rendered = res.Roofline.RenderGnuplot()
	case "summary":
		rendered = res.Roofline.Summary()
	case "json":
		b, jerr := res.Roofline.MarshalJSON()
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "rooftool:", jerr)
			os.Exit(1)
		}
		rendered = string(b) + "\n"
	default:
		fmt.Fprintf(os.Stderr, "rooftool: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *out == "" {
		fmt.Print(rendered)
		return
	}
	if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rooftool:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(rendered))
}
