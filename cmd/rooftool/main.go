// Command rooftool autotunes the DGEMM and TRIAD benchmarks for a target
// system and emits its empirical Roofline model — the end-to-end tool the
// paper describes. Interrupting a run (Ctrl-C) cancels it cleanly between
// kernel executions; -progress streams the tuning live to stderr.
//
// Examples:
//
//	rooftool -system "Gold 6148"              # simulate a paper system
//	rooftool -native -progress                # tune the host, live output
//	rooftool -system 2650v4 -format svg -out roofline.svg
//	rooftool -workloads dgemm                 # compute roof only
//	rooftool -workloads spmv,stencil          # §VII kernels between TRIAD and DGEMM
//	rooftool -triad-levels L1,L2,L3,DRAM -chain  # cache-aware roofline, chained sweeps
//	rooftool -remote http://localhost:8080    # run the campaign on a roofserved daemon
//	rooftool -list                            # list known systems
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"rooftune"
	"rooftune/internal/hw"
	servev1 "rooftune/serve/v1"
)

func main() {
	var (
		system  = flag.String("system", "Gold 6148", "simulated system name (see -list)")
		native  = flag.Bool("native", false, "tune the host with real Go kernels instead of simulating")
		seed    = flag.Uint64("seed", 1021, "noise seed for simulated engines")
		format  = flag.String("format", "text", "output format: text, ascii, svg, gnuplot, summary, json")
		out     = flag.String("out", "", "output file (default stdout)")
		threads = flag.Int("threads", 0, "native parallelism (default GOMAXPROCS)")
		shards  = flag.Int("case-shards", 0, "workers evaluating cases concurrently within each sweep (simulated targets only; 0 = adaptive from spare host parallelism, 1 = serial)")
		levels  = flag.String("triad-levels", "", "comma-separated TRIAD residency regions to sweep (simulated targets only; e.g. L1,L2,L3,DRAM; default L3,DRAM)")
		chain   = flag.Bool("chain", false, "chain same-metric sweeps: pre-seed each sweep's incumbent with its dependency's winner")
		// The usage text asks the registry rather than hand-maintaining a
		// list: a newly registered workload shows up here on its own.
		workloads = flag.String("workloads", "", fmt.Sprintf(
			"comma-separated workloads to run (default: dgemm,triad; registered: %s)",
			strings.Join(rooftune.WorkloadNames(), ",")))
		progress = flag.Bool("progress", false, "stream live tuning progress to stderr")
		remote   = flag.String("remote", "", "roofserved daemon URL: run the campaign there instead of in-process (simulated targets only)")
		list     = flag.Bool("list", false, "list known systems and workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("known systems:  ", strings.Join(hw.Known(), ", "))
		fmt.Println("known workloads:", strings.Join(rooftune.WorkloadNames(), ", "))
		return
	}

	levelNames := splitList(*levels)
	workloadNames := splitList(*workloads)

	// Ctrl-C cancels the run between kernel executions instead of killing
	// the process mid-measurement.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var res *rooftune.Result
	var err error
	if *remote != "" {
		// The daemon serves deterministic simulated campaigns only, with
		// the case-shard count pinned to one — flags that contradict that
		// contract fail loudly instead of silently meaning something else.
		if *native {
			fmt.Fprintln(os.Stderr, "rooftool: -native cannot be combined with -remote: the daemon serves simulated campaigns only")
			os.Exit(2)
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "rooftool: -case-shards > 1 cannot be combined with -remote: the daemon pins case shards to 1 for cacheable results")
			os.Exit(2)
		}
		if *threads != 0 {
			fmt.Fprintln(os.Stderr, "rooftool: -threads is native-only and cannot be combined with -remote")
			os.Exit(2)
		}
		res, err = runRemote(ctx, *remote, servev1.Campaign{
			System:      *system,
			Workloads:   workloadNames,
			Seed:        *seed,
			TriadLevels: levelNames,
			Chain:       *chain,
		}, *progress)
	} else {
		opts := []rooftune.Option{
			rooftune.WithSeed(*seed), rooftune.WithThreads(*threads),
			rooftune.WithCaseShards(*shards), rooftune.WithSweepChaining(*chain),
		}
		if len(levelNames) > 0 {
			opts = append(opts, rooftune.WithTriadLevels(levelNames...))
		}
		if *native {
			opts = append(opts, rooftune.WithNative())
		} else {
			opts = append(opts, rooftune.WithSystem(*system))
		}
		if len(workloadNames) > 0 {
			opts = append(opts, rooftune.WithWorkloads(workloadNames...))
		}
		if *progress {
			opts = append(opts, rooftune.WithProgress(printEvent))
		}

		var sess *rooftune.Session
		sess, err = rooftune.New(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rooftool:", err)
			os.Exit(1)
		}
		res, err = sess.Run(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rooftool:", err)
		os.Exit(1)
	}
	// Empty-region warnings also arrived as events; repeat them here so
	// they are visible without -progress.
	if !*progress {
		for _, w := range res.Warnings {
			fmt.Fprintln(os.Stderr, "rooftool: warning:", w)
		}
	}

	var rendered string
	switch *format {
	case "text":
		rendered = res.Summary() + "\n" + res.Roofline.RenderASCII(76, 20)
	case "ascii":
		rendered = res.Roofline.RenderASCII(76, 20)
	case "svg":
		rendered = res.Roofline.RenderSVG(800, 560)
	case "gnuplot":
		rendered = res.Roofline.RenderGnuplot()
	case "summary":
		rendered = res.Roofline.Summary()
	case "json":
		b, jerr := res.Roofline.MarshalJSON()
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "rooftool:", jerr)
			os.Exit(1)
		}
		rendered = string(b) + "\n"
	default:
		fmt.Fprintf(os.Stderr, "rooftool: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *out == "" {
		fmt.Print(rendered)
		return
	}
	if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rooftool:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(rendered))
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var names []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// printEvent renders one live progress event as a stderr line.
func printEvent(ev rooftune.Event) {
	switch ev.Kind {
	case rooftune.EventSweepStarted:
		fmt.Fprintf(os.Stderr, "[start] %s: %d cases\n", ev.Sweep, ev.Cases)
	case rooftune.EventCaseEvaluated:
		pruned := ""
		if ev.Pruned {
			pruned = "  (outer-pruned)"
		}
		fmt.Fprintf(os.Stderr, "[case ] %s: %s -> %.2f %s%s\n", ev.Sweep, ev.Case, ev.Value, ev.Unit, pruned)
	case rooftune.EventSweepWon:
		fmt.Fprintf(os.Stderr, "[won  ] %s: %s -> %.2f %s  (search %.2fs)\n",
			ev.Sweep, ev.Case, ev.Value, ev.Unit, ev.Elapsed.Seconds())
	case rooftune.EventRegionEmpty:
		fmt.Fprintf(os.Stderr, "[warn ] %s\n", ev.Warning)
	case rooftune.EventSweepSeeded:
		fmt.Fprintf(os.Stderr, "[seed ] %s: incumbent %.2f %s from %s\n", ev.Sweep, ev.Value, ev.Unit, ev.From)
	}
}
