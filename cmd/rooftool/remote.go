package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"rooftune"
	"rooftune/internal/serve"
)

// remoteJob is the subset of the daemon's job-status wire form the
// client needs (see serve.jobStatus).
type remoteJob struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// runRemote executes the campaign on a roofserved daemon and returns
// the decoded Result. The daemon serves the rooftune/result/v1 wire
// schema, which round-trips exactly, so the rendered summary is
// byte-identical to an in-process run of the same campaign. Without
// -progress this is one synchronous POST /v1/tune; with -progress the
// campaign is submitted as a job and its SSE event stream is replayed
// through the same printEvent renderer a local run uses.
func runRemote(ctx context.Context, base string, c serve.Campaign, progress bool) (*rooftune.Result, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("encode campaign: %w", err)
	}
	if !progress {
		return remoteTune(ctx, base, body)
	}
	return remoteJobStream(ctx, base, body)
}

// remoteTune is the synchronous path: POST the campaign, decode the
// Result from the response body.
func remoteTune(ctx context.Context, base string, body []byte) (*rooftune.Result, error) {
	resp, err := postJSON(ctx, base+"/v1/tune", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp.StatusCode, data)
	}
	if resp.Header.Get(serve.CacheHeader) == "hit" {
		fmt.Fprintln(os.Stderr, "rooftool: result served from daemon cache")
	}
	var res rooftune.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("decode result: %w", err)
	}
	return &res, nil
}

// remoteJobStream is the live path: submit asynchronously, replay the
// job's SSE event stream through printEvent, then fetch the terminal
// status for the Result.
func remoteJobStream(ctx context.Context, base string, body []byte) (*rooftune.Result, error) {
	resp, err := postJSON(ctx, base+"/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, remoteError(resp.StatusCode, data)
	}
	var job remoteJob
	if err := json.Unmarshal(data, &job); err != nil {
		return nil, fmt.Errorf("decode job: %w", err)
	}

	if err := streamEvents(ctx, base, job.ID); err != nil {
		return nil, err
	}

	// The stream ended; the terminal status carries the Result.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		return nil, err
	}
	statusResp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetch job status: %w", err)
	}
	defer statusResp.Body.Close()
	data, err = io.ReadAll(statusResp.Body)
	if err != nil {
		return nil, fmt.Errorf("read job status: %w", err)
	}
	if statusResp.StatusCode != http.StatusOK {
		return nil, remoteError(statusResp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &job); err != nil {
		return nil, fmt.Errorf("decode job status: %w", err)
	}
	switch job.State {
	case "done":
		if job.Cached {
			fmt.Fprintln(os.Stderr, "rooftool: result served from daemon cache")
		}
		var res rooftune.Result
		if err := json.Unmarshal(job.Result, &res); err != nil {
			return nil, fmt.Errorf("decode result: %w", err)
		}
		return &res, nil
	case "failed":
		return nil, fmt.Errorf("remote job %s failed: %s", job.ID, job.Error)
	default:
		return nil, fmt.Errorf("remote job %s ended in state %q without a result", job.ID, job.State)
	}
}

// streamEvents subscribes to the job's SSE stream and renders each
// progress event with printEvent until the daemon sends the final
// "end" event.
func streamEvents(ctx context.Context, base, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("subscribe to events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return remoteError(resp.StatusCode, data)
	}

	// Minimal SSE reader: an "event: <name>" line names the block's
	// event, "data: <payload>" carries it, a blank line ends the block.
	// Unnamed blocks are progress events; the "end" block terminates.
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	name := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			name = ""
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if name == "end" {
				return nil
			}
			var ev rooftune.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return fmt.Errorf("decode event: %w", err)
			}
			printEvent(ev)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	return fmt.Errorf("event stream ended before the job did")
}

func postJSON(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("contact daemon: %w", err)
	}
	return resp, nil
}

// remoteError surfaces the daemon's error body, which is a JSON
// {"error": "..."} object, as a plain message.
func remoteError(status int, body []byte) error {
	var wire struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &wire) == nil && wire.Error != "" {
		return fmt.Errorf("daemon returned %d: %s", status, wire.Error)
	}
	return fmt.Errorf("daemon returned %d: %s", status, bytes.TrimSpace(body))
}
