package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"rooftune"
	"rooftune/client"
	servev1 "rooftune/serve/v1"
)

// runRemote executes the campaign on a roofserved daemon through the
// typed rooftune/client package and returns the decoded Result. The
// daemon serves the rooftune/result/v1 wire schema, which round-trips
// exactly, so the rendered summary is byte-identical to an in-process
// run of the same campaign. Without -progress this is one synchronous
// tune call; with -progress the campaign is submitted as a job and its
// SSE event stream is replayed through the same printEvent renderer a
// local run uses. Overload refusals (429) are retried a bounded number
// of times, honoring the daemon's Retry-After hint.
func runRemote(ctx context.Context, base string, c servev1.Campaign, progress bool) (*rooftune.Result, error) {
	cl := client.New(base, client.WithClientID("rooftool"))
	if !progress {
		resp, err := cl.Tune(ctx, c)
		if err != nil {
			return nil, err
		}
		if resp.Cached {
			fmt.Fprintln(os.Stderr, "rooftool: result served from daemon cache")
		}
		return resp.Result, nil
	}

	job, err := cl.Submit(ctx, c)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Events(ctx, job.ID, func(ev rooftune.Event) error {
		printEvent(ev)
		return nil
	}); err != nil {
		return nil, err
	}

	// The stream ended; the terminal status carries the Result.
	st, err := cl.Wait(ctx, job.ID)
	if err != nil {
		return nil, err
	}
	switch st.State {
	case servev1.StateDone:
		if st.Cached {
			fmt.Fprintln(os.Stderr, "rooftool: result served from daemon cache")
		}
		var res rooftune.Result
		if err := json.Unmarshal(st.Result, &res); err != nil {
			return nil, fmt.Errorf("decode result: %w", err)
		}
		return &res, nil
	case servev1.StateFailed:
		return nil, fmt.Errorf("remote job %s failed: %s", st.ID, st.Error)
	default:
		return nil, fmt.Errorf("remote job %s ended in state %q without a result", st.ID, st.State)
	}
}
