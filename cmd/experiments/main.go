// Command experiments regenerates the paper's tables and figures from the
// simulated engines.
//
// Examples:
//
//	experiments -artifact all                 # every artifact, text format
//	experiments -artifact table4,table5
//	experiments -artifact fig1 -format svg -out fig1.svg
//	experiments -artifact table9 -format csv
//	experiments -write-md EXPERIMENTS.md      # full paper-vs-measured doc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rooftune/internal/experiments"
	"rooftune/internal/report"
)

func main() {
	var (
		artifact = flag.String("artifact", "all", "comma-separated artifacts: table1..table11, fig1..fig6, intel, constraint, table6ext, secondchance, distribution, all")
		format   = flag.String("format", "text", "table format: text, markdown, csv; figures: text, tsv, svg (fig1)")
		out      = flag.String("out", "", "output file (default stdout)")
		seed     = flag.Uint64("seed", experiments.DefaultSeed, "simulation noise seed")
		writeMD  = flag.String("write-md", "", "write the full EXPERIMENTS.md to this path and exit")
		jsonOut  = flag.String("json", "", "run the full campaign (in parallel) and write machine-readable JSON to this path")
	)
	flag.Parse()

	r := experiments.New()
	r.Seed = *seed

	if *writeMD != "" {
		md, err := r.GenerateMarkdown()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*writeMD, []byte(md), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *writeMD, len(md))
		return
	}
	if *jsonOut != "" {
		campaign, err := r.RunCampaign(true)
		if err != nil {
			fail(err)
		}
		blob, err := campaign.MarshalJSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *jsonOut, len(blob))
		return
	}

	want := map[string]bool{}
	for _, a := range strings.Split(*artifact, ",") {
		want[strings.TrimSpace(a)] = true
	}
	all := want["all"]
	var sb strings.Builder
	emitTable := func(t *report.Table) {
		switch *format {
		case "markdown":
			sb.WriteString(t.Markdown() + "\n")
		case "csv":
			sb.WriteString(t.CSV() + "\n")
		default:
			sb.WriteString(t.Text() + "\n")
		}
	}
	emitFigure := func(f *report.Figure) {
		if *format == "tsv" {
			sb.WriteString(f.TSV() + "\n")
		} else {
			sb.WriteString(f.BarChartASCII(48) + "\n")
		}
	}

	if all || want["table1"] {
		emitTable(r.Table1())
	}
	if all || want["table2"] {
		emitTable(r.Table2())
	}
	if all || want["table3"] {
		emitTable(r.Table3())
	}

	needT45 := all || want["table4"] || want["table5"] || want["fig1"] || want["fig3"] || want["intel"]
	var dgemmRuns []*experiments.DGEMMRun
	if needT45 {
		var err error
		dgemmRuns, err = r.Table4Data()
		if err != nil {
			fail(err)
		}
	}
	if all || want["table4"] {
		emitTable(experiments.Table4(dgemmRuns))
	}
	if all || want["table5"] {
		t5, err := experiments.Table5(dgemmRuns)
		if err != nil {
			fail(err)
		}
		emitTable(t5)
	}

	needT6 := all || want["table6"] || want["fig1"] || want["fig4"]
	var triadRuns []*experiments.TriadRun
	if needT6 {
		var err error
		triadRuns, err = r.Table6Data()
		if err != nil {
			fail(err)
		}
	}
	if all || want["table6"] {
		emitTable(experiments.Table6(triadRuns))
	}
	if all || want["table7"] {
		emitTable(r.Table7())
	}

	optNeeded := map[string]string{"table8": "2650v4", "table9": "2695v4",
		"table10": "Gold 6132", "table11": "Gold 6148"}
	var optTables []*experiments.OptTable
	for key, sys := range optNeeded {
		if all || want[key] || want["fig5"] {
			tbl, err := r.OptimizationTable(sys)
			if err != nil {
				fail(err)
			}
			optTables = append(optTables, tbl)
			if all || want[key] {
				emitTable(tbl.Render(experiments.OptTableNumbers[sys]))
			}
		}
	}

	if all || want["fig1"] {
		f, err := experiments.Fig1(dgemmRuns[3], triadRuns[3])
		if err != nil {
			fail(err)
		}
		if *format == "svg" {
			sb.WriteString(f.RenderSVG(800, 560))
		} else {
			sb.WriteString(f.RenderASCII(76, 20) + "\n")
		}
	}
	if all || want["fig2"] {
		sb.WriteString(experiments.Fig2() + "\n\n")
	}
	if all || want["fig3"] {
		emitFigure(experiments.Fig3(dgemmRuns))
	}
	if all || want["fig4"] {
		emitFigure(experiments.Fig4(triadRuns))
	}
	if all || want["fig5"] {
		emitFigure(experiments.Fig5(optTables))
	}
	if all || want["fig6"] {
		pts, err := r.Fig6Data("2650v4")
		if err != nil {
			fail(err)
		}
		emitFigure(experiments.Fig6(pts))
	}
	if all || want["intel"] {
		ic, err := r.RunIntelComparison(dgemmRuns[2])
		if err != nil {
			fail(err)
		}
		emitTable(ic.Render())
	}
	if all || want["constraint"] {
		rows, err := r.ConstraintStudy()
		if err != nil {
			fail(err)
		}
		emitTable(experiments.RenderConstraintStudy(rows))
	}
	if all || want["table6ext"] {
		if triadRuns == nil {
			var err error
			triadRuns, err = r.Table6Data()
			if err != nil {
				fail(err)
			}
		}
		emitTable(experiments.Table6Extended(triadRuns))
	}
	if all || want["secondchance"] {
		row, err := r.SecondChanceStudy()
		if err != nil {
			fail(err)
		}
		emitTable(row.Render())
	}
	if all || want["distribution"] {
		rows, err := r.DistributionStudy()
		if err != nil {
			fail(err)
		}
		emitTable(experiments.RenderDistributionStudy(rows))
	}

	if sb.Len() == 0 {
		fail(fmt.Errorf("no artifact matched %q", *artifact))
	}
	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, sb.Len())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
