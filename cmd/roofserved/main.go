// Command roofserved is the rooftune tuning daemon: a long-lived HTTP
// service that runs simulated autotuning campaigns on demand and
// memoizes every completed Result in a content-addressed cache. A
// repeated campaign — same system, workloads, space, seed and budget —
// is answered from the cache byte-for-byte, with zero kernel
// executions; concurrent identical submissions collapse onto a single
// run; concurrent distinct campaigns divide the host under a shared
// parallelism budget.
//
// Endpoints (see the README "Serving" section for the campaign schema):
//
//	POST   /v1/tune             submit a campaign and wait for the Result
//	POST   /v1/jobs             submit asynchronously, poll the returned id
//	GET    /v1/jobs/{id}        job status (+ Result when done)
//	GET    /v1/jobs/{id}/events live progress as Server-Sent Events
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            cache / budget / job counters
//
// Examples:
//
//	roofserved                          # ephemeral port, in-memory cache
//	roofserved -addr :8080 -cache-dir /var/cache/roofserved
//	roofserved -parallelism 4           # cap the host share tuning may use
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rooftune/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
		cacheEntries = flag.Int("cache-entries", 0, "result-cache capacity in entries (0 = default 256)")
		cacheDir     = flag.String("cache-dir", "", "directory persisting cache entries across restarts (empty = in-memory only)")
		parallelism  = flag.Int("parallelism", 0, "host-parallelism capacity divided among concurrent runs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	// base bounds every tuning run the daemon starts: cancelling it on
	// shutdown aborts in-flight sweeps between kernel executions.
	base, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	srv, err := serve.New(base, serve.Config{
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		Parallelism:  *parallelism,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roofserved:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roofserved:", err)
		os.Exit(1)
	}
	// The resolved address goes to stdout on its own line so scripts can
	// capture the ephemeral port (the serve-smoke CI job does).
	fmt.Printf("roofserved listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	//rooflint:allow nogoroutine -- http.Serve lives for the process; joined via errc after Shutdown below
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let handlers drain briefly,
		// then abort any still-running sweeps.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			cancelRuns()
			_ = httpSrv.Close()
		}
		cancelRuns()
		<-errc
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "roofserved:", err)
			os.Exit(1)
		}
	}
}
