// Command roofserved is the rooftune tuning daemon: a long-lived HTTP
// service that runs simulated autotuning campaigns on demand and
// memoizes every completed Result in a content-addressed cache. A
// repeated campaign — same system, workloads, space, seed and budget —
// is answered from the cache byte-for-byte, with zero kernel
// executions; concurrent identical submissions collapse onto a single
// run; concurrent distinct campaigns divide the host under a shared
// parallelism budget.
//
// Production hardening is configuration: -max-jobs bounds concurrent
// runs, -queue-depth bounds how many admitted jobs may wait (excess
// load is shed with 429 + Retry-After and a structured error body),
// -per-client-queue keeps one client from filling the whole queue
// (clients identify themselves with the X-Roofserve-Client header),
// and -cache-ttl / -cache-min-run bound how long and which results the
// cache keeps. GET /metrics exposes the Prometheus text-format
// counters operators alert on.
//
// Endpoints (see the README "Serving" section for the campaign schema):
//
//	POST   /v1/tune             submit a campaign and wait for the Result
//	POST   /v1/jobs             submit asynchronously, poll the returned id
//	GET    /v1/jobs/{id}        job status (+ Result when done)
//	GET    /v1/jobs/{id}/events live progress as Server-Sent Events
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            cache / admission / budget / job counters
//	GET    /metrics             Prometheus text-format exposition
//
// Examples:
//
//	roofserved                          # ephemeral port, in-memory cache
//	roofserved -addr :8080 -cache-dir /var/cache/roofserved
//	roofserved -parallelism 4           # cap the host share tuning may use
//	roofserved -max-jobs 2 -queue-depth 8 -retry-after 2s
//	roofserved -cache-ttl 24h -cache-min-run 50ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rooftune/internal/serve"
)

// splitWorkers parses the -workers flag: comma-separated base URLs,
// empty elements dropped, trailing slashes trimmed so path joining is
// uniform.
func splitWorkers(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
		cacheEntries   = flag.Int("cache-entries", 0, "result-cache capacity in entries (0 = default 256)")
		cacheDir       = flag.String("cache-dir", "", "directory persisting cache entries across restarts (empty = in-memory only)")
		cacheTTL       = flag.Duration("cache-ttl", 0, "cache entry lifetime; persisted entries honor it across restarts (0 = never expire)")
		cacheMinRun    = flag.Duration("cache-min-run", 0, "cache admission floor: results measured faster than this are not cached (0 = cache everything)")
		parallelism    = flag.Int("parallelism", 0, "host-parallelism capacity divided among concurrent runs (0 = GOMAXPROCS)")
		maxJobs        = flag.Int("max-jobs", 0, "max concurrently running jobs (0 = unlimited, disables queuing and shedding)")
		queueDepth     = flag.Int("queue-depth", 0, "max admitted jobs waiting for a run slot; excess requests are shed with 429")
		perClientQueue = flag.Int("per-client-queue", 0, "max queue slots any one client may hold (0 = only -queue-depth bounds it)")
		retryAfter     = flag.Duration("retry-after", 0, "Retry-After hint on shed responses (0 = 1s)")
		workers        = flag.String("workers", "", "comma-separated roofworkerd base URLs; non-empty runs the daemon as the distributed coordinator")
		workerHB       = flag.Duration("worker-heartbeat", 0, "worker health-probe interval (0 = 2s)")
		workerLease    = flag.Duration("worker-lease", 0, "how long one node dispatch may stay unanswered before requeue (0 = 60s)")
	)
	flag.Parse()

	// base bounds every tuning run the daemon starts: cancelling it on
	// shutdown aborts in-flight sweeps between kernel executions.
	base, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	srv, err := serve.New(base, serve.Config{
		CacheEntries:    *cacheEntries,
		CacheDir:        *cacheDir,
		CacheTTL:        *cacheTTL,
		CacheMinRun:     *cacheMinRun,
		Parallelism:     *parallelism,
		MaxJobs:         *maxJobs,
		QueueDepth:      *queueDepth,
		PerClientQueue:  *perClientQueue,
		RetryAfter:      *retryAfter,
		Workers:         splitWorkers(*workers),
		WorkerHeartbeat: *workerHB,
		WorkerLease:     *workerLease,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roofserved:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roofserved:", err)
		os.Exit(1)
	}
	// The resolved address goes to stdout on its own line so scripts can
	// capture the ephemeral port (the serve-smoke CI job does).
	fmt.Printf("roofserved listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	//rooflint:allow nogoroutine -- http.Serve lives for the process; joined via errc after Shutdown below
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let handlers drain briefly,
		// then abort any still-running sweeps.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			cancelRuns()
			_ = httpSrv.Close()
		}
		cancelRuns()
		<-errc
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "roofserved:", err)
			os.Exit(1)
		}
	}
}
