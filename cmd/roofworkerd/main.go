// Command roofworkerd is the rooftune distributed-sweep worker: a thin
// HTTP daemon that executes single plan-graph nodes on behalf of a
// coordinator (roofserved -workers, or any client of the rooftune
// dist/v1 contract).
//
// Each node spec carries the full wire campaign plus the node id and
// incumbent seed; the worker rebuilds the session through the same
// resolution path the coordinator fingerprinted, verifies the node
// fingerprint, and runs exactly that node with the library's normal
// Session machinery. Execution is idempotent by node fingerprint: a
// running node absorbs duplicate dispatches (they join and wait), and
// completed outcomes are cached so requeued or replayed dispatches —
// including after a coordinator restart — are answered instantly with
// zero kernel executions. Concurrent nodes divide the host under the
// same shared parallelism budget the serving tier uses.
//
// Endpoints (see the README "Distributed sweeps" section):
//
//	POST /dist/v1/run      execute one node spec, long-poll the outcome
//	POST /dist/v1/bound    push a monotone incumbent bound to a running node
//	GET  /dist/v1/healthz  enrollment heartbeat (identity, load, capacity)
//	GET  /metrics          Prometheus text-format exposition
//
// Examples:
//
//	roofworkerd                          # ephemeral port
//	roofworkerd -addr :9090 -name w1     # fixed port, fleet identity
//	roofworkerd -parallelism 4           # cap the host share nodes may use
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rooftune/internal/dist"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
		name         = flag.String("name", "", "worker identity reported on heartbeats and outcomes (default: the listen address)")
		parallelism  = flag.Int("parallelism", 0, "host-parallelism capacity divided among concurrent nodes (0 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache-entries", 0, "completed-node cache capacity in entries (0 = default 256)")
	)
	flag.Parse()

	// base bounds every node run the worker starts: cancelling it on
	// shutdown aborts in-flight measurements between kernel executions.
	base, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roofworkerd:", err)
		os.Exit(1)
	}
	if *name == "" {
		*name = ln.Addr().String()
	}
	w := dist.NewWorker(base, dist.WorkerConfig{
		Name:         *name,
		Parallelism:  *parallelism,
		CacheEntries: *cacheEntries,
	})
	// The resolved address goes to stdout on its own line so scripts can
	// capture the ephemeral port (the dist-smoke CI job does).
	fmt.Printf("roofworkerd listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: w.Handler()}
	errc := make(chan error, 1)
	//rooflint:allow nogoroutine -- http.Serve lives for the process; joined via errc after Shutdown below
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight nodes drain
		// briefly, then abort any still-running measurements.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			cancelRuns()
			_ = httpSrv.Close()
		}
		cancelRuns()
		<-errc
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "roofworkerd:", err)
			os.Exit(1)
		}
	}
}
