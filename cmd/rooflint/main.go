// Command rooflint is the project's static-analysis suite: a
// multichecker over the analyzers in internal/lint that machine-checks
// the invariants the reproduction's trustworthiness rests on —
// exhaustive bench.Config handling, deterministic time and randomness
// on the measurement path, pooled concurrency, context-first blocking
// APIs, and the monotone incumbent protocol.
//
//	go run ./cmd/rooflint ./...         # lint the tree (CI runs this)
//	go run ./cmd/rooflint -list         # print the registered analyzers
//	go run ./cmd/rooflint ./internal/...
//
// Findings print as file:line:col: analyzer: message and any finding
// exits nonzero. Sanctioned exceptions are annotated in the source with
// //rooflint:allow <analyzer> -- <justification>; see README "Static
// analysis".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rooftune/internal/lint"
	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/configsum"
	"rooftune/internal/lint/ctxfirst"
	"rooftune/internal/lint/incumbentwrite"
	"rooftune/internal/lint/nodeterminism"
	"rooftune/internal/lint/nogoroutine"
)

// analyzers is the registry; -list prints it, so the usage text can
// never drift from what actually runs (mirroring rooftool -workloads).
var analyzers = []*analysis.Analyzer{
	configsum.Analyzer,
	ctxfirst.Analyzer,
	incumbentwrite.Analyzer,
	nodeterminism.Analyzer,
	nogoroutine.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers with their invariants and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rooflint [-list] [packages]\n\nAnalyzers:\n%s\nPackages default to ./... resolved in the current directory.\n",
			analyzerTable())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		fmt.Print(analyzerTable())
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rooflint:", err)
		os.Exit(1)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rooflint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rooflint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// analyzerTable renders one line per registered analyzer: its name and
// the first sentence of its Doc.
func analyzerTable() string {
	var sb strings.Builder
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(&sb, "  %-15s %s\n", a.Name, doc)
	}
	return sb.String()
}
