// Command rooflint is the project's static-analysis suite: a
// multichecker over the analyzers in internal/lint that machine-checks
// the invariants the reproduction's trustworthiness rests on —
// exhaustive bench.Config handling, deterministic time and randomness
// on the measurement path, pooled concurrency, context-first blocking
// APIs, the monotone incumbent protocol, the committed API-surface and
// wire-schema goldens, the serving tier's lock discipline, and the
// hot paths' no-allocation discipline.
//
//	go run ./cmd/rooflint ./...               # lint the tree (CI runs this)
//	go run ./cmd/rooflint -list               # print the registered analyzers
//	go run ./cmd/rooflint -write-goldens ./...# regenerate api/*.txt goldens
//	go run ./cmd/rooflint -github ./...       # findings as ::error annotations
//	go run ./cmd/rooflint -json ./...         # findings as a JSON array
//
// Findings print as file:line:col: analyzer: message. Exit codes are
// part of the contract: 0 is a clean tree, 1 means findings, 2 means
// the tree failed to load or type-check (or rooflint itself failed) —
// so CI can distinguish "invariant broken" from "build broken".
// Sanctioned exceptions are annotated in the source with
// //rooflint:allow <analyzers> -- <justification>; see README "Static
// analysis".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rooftune/internal/lint"
	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/apisurface"
	"rooftune/internal/lint/configsum"
	"rooftune/internal/lint/ctxfirst"
	"rooftune/internal/lint/golden"
	"rooftune/internal/lint/incumbentwrite"
	"rooftune/internal/lint/lockorder"
	"rooftune/internal/lint/noalloc"
	"rooftune/internal/lint/nodeterminism"
	"rooftune/internal/lint/nogoroutine"
	"rooftune/internal/lint/wirecompat"
)

// Exit codes; the CI workflow and scripts/apicheck.sh rely on the
// distinction.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

// analyzers is the registry; -list prints it, so the usage text can
// never drift from what actually runs (mirroring rooftool -workloads).
var analyzers = []*analysis.Analyzer{
	apisurface.Analyzer,
	configsum.Analyzer,
	ctxfirst.Analyzer,
	incumbentwrite.Analyzer,
	lockorder.Analyzer,
	noalloc.Analyzer,
	nodeterminism.Analyzer,
	nogoroutine.Analyzer,
	wirecompat.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "print the registered analyzers with their invariants and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	asGitHub := flag.Bool("github", false, "emit findings as GitHub ::error annotations")
	writeGoldens := flag.Bool("write-goldens", false, "regenerate the api/*.txt goldens instead of checking them")
	tags := flag.String("tags", "", "comma-separated build tags passed to go list")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rooflint [-list] [-json|-github] [-write-goldens] [-tags list] [packages]\n\nAnalyzers:\n%s\nPackages default to ./... resolved in the current directory.\nExit codes: %d clean, %d findings, %d load/type-check error.\n",
			analyzerTable(), exitClean, exitFindings, exitError)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		fmt.Print(analyzerTable())
		return exitClean
	}
	golden.WriteMode = *writeGoldens

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadTags(".", *tags, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rooflint:", err)
		return exitError
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rooflint:", err)
		return exitError
	}

	switch {
	case *asJSON:
		if err := emitJSON(diags); err != nil {
			fmt.Fprintln(os.Stderr, "rooflint:", err)
			return exitError
		}
	case *asGitHub:
		emitGitHub(diags)
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rooflint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitClean
}

// findingJSON is the -json element schema, stable for tooling.
type findingJSON struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func emitJSON(diags []lint.Diag) error {
	out := make([]findingJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, findingJSON{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitGitHub renders findings as workflow commands, so the CI run
// annotates the offending lines in the pull-request diff. Newlines and
// the characters the command syntax reserves are percent-escaped per
// the workflow-command spec.
func emitGitHub(diags []lint.Diag) {
	escape := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	for _, d := range diags {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=rooflint %s::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, escape.Replace(d.Message))
	}
}

// analyzerTable renders one line per registered analyzer: its name and
// the first sentence of its Doc.
func analyzerTable() string {
	var sb strings.Builder
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(&sb, "  %-15s %s\n", a.Name, doc)
	}
	return sb.String()
}
