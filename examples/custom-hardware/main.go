// Custom hardware: describe your own machine, let the generic calibration
// model it, and compare the autotuned empirical roofline against the
// theoretical peaks of Eqs. 9-11. This is the workflow for systems the
// paper never measured.
//
//	go run ./examples/custom-hardware
package main

import (
	"context"
	"fmt"
	"log"

	"rooftune"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func main() {
	// A hypothetical single-socket AVX-512 workstation part.
	sys := hw.System{
		Name:           "W-3275ish",
		FreqGHz:        2.5,
		CoresPerSocket: 28,
		Vector:         hw.AVX512,
		FMAUnits:       2,
		Sockets:        1,
		DRAMFreqMHz:    2933,
		DRAMChannels:   6,
		BytesPerCycle:  8,
		L3PerSocket:    units.ByteSize(38.5 * float64(units.MiB)),
		L2PerCore:      units.MiB,
		L1PerCore:      32 * units.KiB,
	}
	if err := hw.Register(sys); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: %v\n", &sys)
	fmt.Printf("theoretical peak (Eq. 9):      %v\n", sys.TheoreticalFlops(1))
	fmt.Printf("theoretical bandwidth (Eq. 11): %v\n\n", sys.TheoreticalBandwidth(1))

	sess, err := rooftune.New(rooftune.WithSystem("W-3275ish"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	fmt.Println(res.Roofline.RenderASCII(76, 18))
	fmt.Println("Uncalibrated systems use the generic response surface: AVX-512 era")
	fmt.Println("efficiency with the near-universal k=128 sweet spot (DESIGN.md §3).")
}
