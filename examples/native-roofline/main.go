// Native roofline: tune the real pure-Go DGEMM and TRIAD kernels on this
// machine and print its measured roofline. No hardware model involved —
// this is the tool doing on your laptop what the paper did on Xeon nodes.
//
// Expect a run time of a couple of minutes with the default budget; pass
// a smaller space or fewer invocations for a faster sketch. Progress
// streams live as each sweep wins, and Ctrl-C cancels cleanly.
//
//	go run ./examples/native-roofline
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

func main() {
	// A compact budget: 2 invocations, CI-converged iterations, and both
	// early-termination bounds, so the sweep stays interactive.
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	budget.Invocations = 2
	budget.MaxIterations = 20
	budget.MaxTime = time.Second

	sess, err := rooftune.New(
		rooftune.WithNative(),
		rooftune.WithBudget(budget),
		// Modest sizes keep a laptop run under a minute or two while
		// still exercising the cache-blocked kernel.
		rooftune.WithSpace([]core.Dims{
			{N: 256, M: 256, K: 128}, {N: 512, M: 512, K: 128},
			{N: 512, M: 512, K: 256}, {N: 768, M: 768, K: 128},
			{N: 1024, M: 512, K: 128}, {N: 512, M: 1024, K: 128},
		}),
		rooftune.WithTriadRange(32*units.KiB, 128*units.MiB),
		// Live progress: one line when a sweep starts and one when it
		// settles on a winner, so long native runs are never silent.
		rooftune.WithProgress(func(ev rooftune.Event) {
			switch ev.Kind {
			case rooftune.EventSweepStarted:
				fmt.Printf("tuning %s (%d cases)...\n", ev.Sweep, ev.Cases)
			case rooftune.EventSweepWon:
				fmt.Printf("  %s: %.2f %s with %s\n", ev.Sweep, ev.Value, ev.Unit, ev.Case)
			case rooftune.EventRegionEmpty:
				fmt.Printf("  warning: %s\n", ev.Warning)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := sess.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Summary())
	fmt.Println(res.Roofline.RenderASCII(76, 18))
	fmt.Println("(native engine: wall-clock measurements of real Go kernels)")
}
