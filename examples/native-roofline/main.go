// Native roofline: tune the real pure-Go DGEMM and TRIAD kernels on this
// machine and print its measured roofline. No hardware model involved —
// this is the tool doing on your laptop what the paper did on Xeon nodes.
//
// Expect a run time of a couple of minutes with the default budget; pass
// a smaller space or fewer invocations for a faster sketch.
//
//	go run ./examples/native-roofline
package main

import (
	"fmt"
	"log"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

func main() {
	// A compact budget: 2 invocations, CI-converged iterations, and both
	// early-termination bounds, so the sweep stays interactive.
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	budget.Invocations = 2
	budget.MaxIterations = 20
	budget.MaxTime = time.Second

	res, err := rooftune.Native(&rooftune.Options{
		Budget: &budget,
		// Modest sizes keep a laptop run under a minute or two while
		// still exercising the cache-blocked kernel.
		Space: []core.Dims{
			{N: 256, M: 256, K: 128}, {N: 512, M: 512, K: 128},
			{N: 512, M: 512, K: 256}, {N: 768, M: 768, K: 128},
			{N: 1024, M: 512, K: 128}, {N: 512, M: 1024, K: 128},
		},
		TriadLo: 32 * units.KiB,
		TriadHi: 128 * units.MiB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	fmt.Println(res.Roofline.RenderASCII(76, 18))
	fmt.Println("(native engine: wall-clock measurements of real Go kernels)")
}
