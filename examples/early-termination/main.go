// Early termination: the paper's core methodological result, live. Runs
// the DGEMM search on the 2650v4 under four evaluation techniques and
// shows that the confidence-interval optimisations cut search time by one
// to two orders of magnitude while changing the answer by well under 2%.
//
//	go run ./examples/early-termination
package main

import (
	"fmt"
	"log"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/experiments"
)

func main() {
	r := experiments.New()
	sys, err := r.SystemByName("2650v4")
	if err != nil {
		log.Fatal(err)
	}

	techniques := []core.Technique{
		{Name: "Default (fixed samples)", Budget: bench.DefaultBudget(), Order: core.OrderForward},
		{Name: "Confidence (stop 3)", Budget: bench.DefaultBudget().WithFlags(true, false, false), Order: core.OrderForward},
		{Name: "C+Inner (stop 3+4)", Budget: bench.DefaultBudget().WithFlags(true, true, false), Order: core.OrderForward},
		{Name: "C+Inner+Outer", Budget: bench.DefaultBudget().WithFlags(true, true, true), Order: core.OrderForward},
	}

	fmt.Println("DGEMM autotuning on the simulated 2650v4 (single + dual socket sweeps):")
	var baseline float64
	var baseTime float64
	for i, tech := range techniques {
		run, err := r.RunDGEMMTechnique(sys, tech)
		if err != nil {
			log.Fatal(err)
		}
		d1, _ := experiments.BestDims(run.S1)
		if i == 0 {
			baseline = run.S1.BestValue()
			baseTime = run.Total.Seconds()
		}
		errPct := 100 * core.RelativeError(run.S1.BestValue(), baseline)
		fmt.Printf("  %-26s FS1 %7.2f GFLOP/s (err %.2f%%)  at %v  search %8.2fs  speedup %6.2fx\n",
			tech.Name, run.S1.BestValue()/1e9, errPct, d1,
			run.Total.Seconds(), baseTime/run.Total.Seconds())
	}
	fmt.Println("\nEvery adaptive technique finds the same optimum within 2% — the")
	fmt.Println("paper's headline claim — at a fraction of the measurement cost.")
}
