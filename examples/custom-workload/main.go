// Custom workload: extend the roofline with your own benchmark family,
// without touching package rooftune. A Workload turns the session target
// and parameters into autotuning sweeps; this example models a toy STREAM
// SCALE kernel (y[i] = s*x[i]) on a virtual clock, registers it under
// "scale", and runs it alongside the built-in DGEMM and TRIAD workloads —
// the extra bandwidth ceiling simply appears in the Result and roofline.
//
// The same mechanism is how the real additions landed: the built-in
// "spmv" and "stencil" workloads are exactly this pattern at full scale
// — see internal/workloads/spmv for the reference implementation (a
// native kernel package, a calibrated simulated model, a typed
// bench.Config variant carried through the pipeline, and a Point whose
// Intensity lands the winner between TRIAD and DGEMM on the roofline's
// intensity axis). Per-cache-level TRIAD residency regions would follow
// the same route: a new package implementing rooftune.Workload, one
// RegisterWorkload call, and WithWorkloads. Registered workloads must
// pass the registry conformance contract (internal/workload.Conform,
// enforced in CI by cmd/workloadcheck).
//
//	go run ./examples/custom-workload
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/sweep"
	"rooftune/internal/vclock"
)

// scaleWorkload plans one sweep over SCALE vector lengths. It implements
// rooftune.Workload with a deterministic analytical model, so the example
// runs instantly; a real workload would build engine-backed cases here
// (compare internal/workloads/triad).
type scaleWorkload struct{}

func (scaleWorkload) Name() string { return "scale" }

func (scaleWorkload) Plan(t rooftune.Target, p rooftune.Params) (rooftune.Plan, error) {
	var plan rooftune.Plan
	if t.IsNative() {
		return plan, fmt.Errorf("scale: toy model only; no native kernel")
	}
	clock := vclock.NewVirtual()
	var cases []bench.Case
	for elems := 1 << 12; elems <= 1<<24; elems *= 4 {
		// Respect the session's working-set bounds like the built-ins do
		// (SCALE touches two vectors of 8-byte elements).
		if w := elems * 16; w < int(p.TriadLo) || w > int(p.TriadHi) {
			continue
		}
		cases = append(cases, &scaleCase{clock: clock, elems: elems})
	}
	if len(cases) == 0 {
		plan.Warnf("SCALE: no vector lengths inside %v..%v — its ceiling will be missing", p.TriadLo, p.TriadHi)
		return plan, nil
	}
	// Every planned sweep carries a stable plan-graph ID (convention:
	// "<workload>/<region-or-axis>/<target>"). A workload with several
	// same-metric sweeps can chain them — plan.Chain(id, seedFrom, ...) —
	// so sessions running WithSweepChaining pre-prune each sweep with the
	// previous winner; this toy plans a single sweep, so a plain Add is
	// all it needs.
	plan.Add(
		"scale/1s",
		sweep.Spec{Name: "toy SCALE", Clock: clock, Cases: cases},
		// Land the winner as a memory point in the "SCALE" region.
		rooftune.Point{Sockets: 1, Region: "SCALE"},
	)
	return plan, nil
}

// scaleCase is one vector length of the toy kernel. The performance
// model: loop overhead suppresses tiny vectors, cache capacity suppresses
// huge ones, with a 64 GB/s peak in between.
type scaleCase struct {
	clock *vclock.Virtual
	elems int
}

func (c *scaleCase) Key() string          { return fmt.Sprintf("scale/%d", c.elems) }
func (c *scaleCase) Describe() string     { return fmt.Sprintf("N=%d", c.elems) }
func (c *scaleCase) Metric() bench.Metric { return bench.MetricBandwidth }

// Config reuses the TRIAD identity: memory-side winners are recovered as
// bench.TriadConfig, which is how the session learns the winning length.
func (c *scaleCase) Config() bench.Config {
	return bench.TriadConfig{Elements: c.elems, Sockets: 1}
}

func (c *scaleCase) NewInvocation(inv int) (bench.Instance, error) {
	c.clock.Advance(50 * time.Microsecond) // setup cost
	return &scaleInstance{c: c}, nil
}

type scaleInstance struct{ c *scaleCase }

func (i *scaleInstance) bandwidth() float64 {
	n := float64(i.c.elems)
	ramp := n / (n + 1<<14)            // loop/startup overhead for small N
	spill := 1 / (1 + n/(1<<22))       // capacity falloff for large N
	return 64e9 * ramp * (0.5 + spill) // peak ~64 GB/s mid-range
}

func (i *scaleInstance) Work() float64 { return float64(16 * i.c.elems) } // read x, write y

func (i *scaleInstance) Step() time.Duration {
	d := time.Duration(i.Work() / i.bandwidth() * float64(time.Second))
	i.c.clock.Advance(d)
	return d
}

func (i *scaleInstance) Warmup() { i.Step() }
func (i *scaleInstance) Close()  {}

func main() {
	if err := rooftune.RegisterWorkload(scaleWorkload{}); err != nil {
		log.Fatal(err)
	}

	sess, err := rooftune.New(
		rooftune.WithSystem("Gold 6148"),
		rooftune.WithWorkloads("dgemm", "triad", "scale"),
		rooftune.WithProgress(func(ev rooftune.Event) {
			if ev.Kind == rooftune.EventSweepWon {
				fmt.Printf("tuned %-22s -> %8.2f %s\n", ev.Sweep, ev.Value, ev.Unit)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(res.Summary())
	fmt.Println(res.Roofline.RenderASCII(76, 20))
}
