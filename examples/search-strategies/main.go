// Search strategies: exhaustive forward vs. reversed vs. random traversal
// of the DGEMM space (§IV-C and the "R" rows of Tables VIII-XI). With
// early termination active, traversal order changes *cost*, not the
// answer: reversal meets the expensive configurations before a strong
// incumbent exists, so pruning bites later.
//
//	go run ./examples/search-strategies
package main

import (
	"context"
	"fmt"
	"log"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/experiments"
	"rooftune/internal/hw"
)

func main() {
	sys := hw.IdunGold6148
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	space := core.UnionDGEMMSpace()

	fmt.Printf("search space: %d configurations (union space, DESIGN.md §4)\n\n", len(space))
	for _, order := range []core.Order{core.OrderForward, core.OrderReverse, core.OrderRandom} {
		eng := bench.NewSimEngine(sys, experiments.DefaultSeed)
		tuner := core.NewTuner(eng.Clock, budget, order)
		tuner.Seed = 7 // shuffle seed for the random order
		res, err := tuner.Run(context.Background(), experiments.DGEMMCases(eng, space, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s best %8.2f GFLOP/s (%s)  search %8.2fs  outer-pruned %3d/%d  samples %d\n",
			order, res.BestValue()/1e9, res.Best.Describe,
			res.Elapsed.Seconds(), res.PrunedCount, len(space), res.TotalSamples)
	}

	// The §IV-C counterpoint: a hill climb with restarts over the same
	// space, evaluating only a fraction of it.
	eng := bench.NewSimEngine(sys, experiments.DefaultSeed)
	ls := core.NewLocalSearch(eng.Clock, budget, core.UnionSpaceNeighborhood(), 6, 11)
	res, err := ls.Run(context.Background(), experiments.DGEMMCases(eng, space, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s best %8.2f GFLOP/s (%s)  search %8.2fs  evaluated %3d/%d\n",
		"hillclimb", res.BestValue()/1e9, res.Best.Describe,
		res.Elapsed.Seconds(), res.Evaluations(), len(space))

	fmt.Println("\nSame optimum each way; forward order is cheapest among exhaustive")
	fmt.Println("variants because Fig. 6's cost curve grows with size, so cheap")
	fmt.Println("configurations establish the incumbent before the expensive ones must")
	fmt.Println("be measured. The hill climb needs far fewer evaluations — but offers")
	fmt.Println("no coverage guarantee, which is why the paper prefers exhaustive")
	fmt.Println("search at this cardinality (§IV-C).")
}
