// Serve client: drive the roofserved HTTP API end to end against an
// in-process daemon, through the typed rooftune/client package. The
// example starts a serve.Server on an ephemeral port, submits a small
// simulated campaign as an asynchronous job, tails its live progress
// over Server-Sent Events, decodes the Result from the
// rooftune/result/v1 wire schema, submits the same campaign again to
// show the content-addressed cache answering from memory — byte-for-
// byte the first response, with zero kernel executions — and finally
// scrapes /metrics to show the hit/miss counters reconciling with what
// the client observed.
//
// Against a real daemon the client half is identical; only the base URL
// changes:
//
//	roofserved -addr :8080 &
//	go run ./examples/serve-client        # in-process daemon
//	rooftool -remote http://localhost:8080 -progress
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"rooftune"
	"rooftune/client"
	"rooftune/internal/serve"
	servev1 "rooftune/serve/v1"
)

func main() {
	// Start the daemon in-process: the same serve.Server roofserved
	// wraps, on an ephemeral port. Its base context bounds every run it
	// starts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := serve.New(ctx, serve.Config{CacheEntries: 16})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//rooflint:allow nogoroutine -- example daemon; lives until process exit
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon:", base)

	cl := client.New(base, client.WithClientID("example"))

	// A campaign is plain JSON: the simulated system to characterise
	// plus optional overrides. This one keeps the DGEMM space tiny so
	// the example runs in moments.
	campaign := servev1.Campaign{
		System:    "Gold 6148",
		Workloads: []string{"dgemm", "triad"},
		Seed:      42,
		Space: []servev1.DimsSpec{
			{N: 256, M: 256, K: 256},
			{N: 512, M: 512, K: 512},
			{N: 1024, M: 1024, K: 256},
		},
		TriadLoBytes: 1 << 14,
		TriadHiBytes: 1 << 26,
		Serial:       true, // deterministic event order for the SSE tail
	}

	// --- First submission: asynchronous job + SSE progress tail. ---
	job, err := cl.Submit(ctx, campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (fingerprint %.16s…)\n", job.ID, job.Fingerprint)

	var winners []rooftune.Event
	count := 0
	if _, err := cl.Events(ctx, job.ID, func(ev rooftune.Event) error {
		count++
		if ev.Kind == rooftune.EventSweepWon {
			winners = append(winners, ev)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d progress events; last sweep winners:\n", count)
	for _, ev := range winners {
		fmt.Printf("  %-24s %s -> %.2f %s\n", ev.Sweep, ev.Case, ev.Value, ev.Unit)
	}

	// The terminal status carries the Result in the v1 wire schema,
	// which round-trips exactly — Summary() here is byte-identical to
	// what an in-process Session.Run would have rendered.
	st, err := cl.Wait(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	if st.State != servev1.StateDone {
		log.Fatalf("job ended in state %q: %s", st.State, st.Error)
	}
	var res rooftune.Result
	if err := json.Unmarshal(st.Result, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Summary())

	// --- Second submission: the fingerprint is already cached, so the
	// daemon answers synchronously from stored bytes without running a
	// single kernel. ---
	again, err := cl.Tune(ctx, campaign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted: %s=hit: %v, response bytes identical to first run: %v\n",
		servev1.CacheHeader, again.Cached,
		bytes.Equal(bytes.TrimSpace(again.Raw), bytes.TrimSpace(st.Result)))

	// --- Operations view: the daemon's Prometheus exposition must
	// reconcile with the traffic this client just drove. ---
	exposition, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "roofserve_cache_hits_total") ||
			strings.HasPrefix(line, "roofserve_cache_misses_total") ||
			strings.HasPrefix(line, "roofserve_admission_granted_total") {
			fmt.Println("metric:", line)
		}
	}
}
