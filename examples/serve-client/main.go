// Serve client: drive the roofserved HTTP API end to end against an
// in-process daemon. The example starts a serve.Server on an ephemeral
// port, submits a small simulated campaign as an asynchronous job,
// tails its live progress over Server-Sent Events, decodes the Result
// from the rooftune/result/v1 wire schema, and then submits the same
// campaign again to show the content-addressed cache answering from
// memory — byte-for-byte the first response, with zero kernel
// executions.
//
// Against a real daemon the client half is identical; only the base URL
// changes:
//
//	roofserved -addr :8080 &
//	go run ./examples/serve-client        # in-process daemon
//	rooftool -remote http://localhost:8080 -progress
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"rooftune"
	"rooftune/internal/serve"
)

func main() {
	// Start the daemon in-process: the same serve.Server roofserved
	// wraps, on an ephemeral port. Its base context bounds every run it
	// starts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := serve.New(ctx, serve.Config{CacheEntries: 16})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//rooflint:allow nogoroutine -- example daemon; lives until process exit
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon:", base)

	// A campaign is plain JSON: the simulated system to characterise
	// plus optional overrides. This one keeps the DGEMM space tiny so
	// the example runs in moments.
	campaign := serve.Campaign{
		System:    "Gold 6148",
		Workloads: []string{"dgemm", "triad"},
		Seed:      42,
		Space: []serve.DimsSpec{
			{N: 256, M: 256, K: 256},
			{N: 512, M: 512, K: 512},
			{N: 1024, M: 1024, K: 256},
		},
		TriadLoBytes: 1 << 14,
		TriadHiBytes: 1 << 26,
		Serial:       true, // deterministic event order for the SSE tail
	}
	body, err := json.Marshal(campaign)
	if err != nil {
		log.Fatal(err)
	}

	// --- First submission: asynchronous job + SSE progress tail. ---
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	if err := decodeJSON(resp, &job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (fingerprint %.16s…)\n",
		job.ID, resp.Header.Get(serve.FingerprintHeader))

	events, err := tailEvents(base, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d progress events; last sweep winners:\n", len(events))
	for _, ev := range events {
		if ev.Kind == rooftune.EventSweepWon {
			fmt.Printf("  %-24s %s -> %.2f %s\n", ev.Sweep, ev.Case, ev.Value, ev.Unit)
		}
	}

	// The terminal status carries the Result in the v1 wire schema,
	// which round-trips exactly — Summary() here is byte-identical to
	// what an in-process Session.Run would have rendered.
	resp, err = http.Get(base + "/v1/jobs/" + job.ID)
	if err != nil {
		log.Fatal(err)
	}
	if err := decodeJSON(resp, &job); err != nil {
		log.Fatal(err)
	}
	if job.State != "done" {
		log.Fatalf("job ended in state %q", job.State)
	}
	var res rooftune.Result
	if err := json.Unmarshal(job.Result, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Summary())

	// --- Second submission: the fingerprint is already cached, so the
	// daemon answers synchronously from stored bytes without running a
	// single kernel. ---
	resp, err = http.Post(base+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	again, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted: %s=%s, response bytes identical to first run: %v\n",
		serve.CacheHeader, resp.Header.Get(serve.CacheHeader),
		bytes.Equal(bytes.TrimSpace(again), bytes.TrimSpace(job.Result)))
}

// tailEvents subscribes to the job's SSE stream and collects progress
// events until the daemon's final "end" event.
func tailEvents(base, id string) ([]rooftune.Event, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var events []rooftune.Event
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	name := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "":
			name = ""
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if name == "end" {
				return events, nil
			}
			var ev rooftune.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return nil, err
			}
			events = append(events, ev)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return events, fmt.Errorf("event stream ended before the job did")
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("daemon returned %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, v)
}
