// Late bloomer: the paper's §VI-C failure mode and its §VII remedy, live.
//
// On the (simulated) 2695v4 — the system whose clock-frequency scaling
// could not be disabled — configurations speed up substantially during
// the first iterations. With the default min_count=2, stop condition 4
// prunes the best configuration while it is still warming up; the paper's
// fix was raising min_count to 100, which costs most of the speedup.
//
// This example compares three runs on the single-socket sweep:
//
//  1. C+Inner with min_count=2     — fast, wrong (the anomaly),
//
//  2. C+Inner with min_count=100   — right, slow (the paper's fix),
//
//  3. C+Inner with min_count=2 + second-chance pass — right AND fast
//     (the future-work remedy implemented in this repository).
//
//     go run ./examples/late-bloomer
package main

import (
	"context"
	"fmt"
	"log"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/experiments"
	"rooftune/internal/hw"
)

func main() {
	sys := hw.IdunE52695v4
	space := core.UnionDGEMMSpace()

	run := func(minCount int, secondChance bool) (float64, core.Dims, float64) {
		eng := bench.NewSimEngine(sys, experiments.DefaultSeed)
		budget := bench.DefaultBudget().WithFlags(true, true, false).WithMinCount(minCount)
		tuner := core.NewTuner(eng.Clock, budget, core.OrderForward)
		cases := experiments.DGEMMCases(eng, space, 1)

		var res *core.Result
		var err error
		if secondChance {
			var sc *core.SecondChanceResult
			sc, err = tuner.RunWithSecondChance(context.Background(), cases, core.DefaultSecondChance())
			if sc != nil {
				res = sc.Result
			}
		} else {
			res, err = tuner.Run(context.Background(), cases)
		}
		if err != nil {
			log.Fatal(err)
		}
		d, err := experiments.BestDims(res)
		if err != nil {
			log.Fatal(err)
		}
		return res.BestValue() / 1e9, d, res.Elapsed.Seconds()
	}

	fmt.Printf("DGEMM search on the simulated %s, single socket (true optimum: 2000,4096,128 at ~593 GFLOP/s):\n\n", sys.Name)
	v1, d1, t1 := run(2, false)
	fmt.Printf("  C+Inner, min_count=2:             %7.2f GFLOP/s at %v   (%7.2fs virtual)  <- the §VI-C anomaly\n", v1, d1, t1)
	v2, d2, t2 := run(100, false)
	fmt.Printf("  C+Inner, min_count=100:           %7.2f GFLOP/s at %v  (%7.2fs virtual)  <- the paper's fix\n", v2, d2, t2)
	v3, d3, t3 := run(2, true)
	fmt.Printf("  C+Inner, min_count=2 + 2nd chance:%7.2f GFLOP/s at %v  (%7.2fs virtual)  <- §VII remedy\n", v3, d3, t3)

	fmt.Printf("\nThe second-chance pass recovers the min_count=100 answer at %.1fx less cost.\n", t2/t3)
}
