// Quickstart: build the empirical Roofline model of a paper system in a
// few lines. The simulated engine makes this deterministic and instant;
// swap WithSystem for rooftune.WithNative() to profile your own machine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rooftune"
)

func main() {
	// Autotune DGEMM (compute roof) and TRIAD (memory roofs) for the
	// Intel Xeon Gold 6148 node of the paper, with the paper's best
	// technique (confidence intervals + early termination) as the default.
	sess, err := rooftune.New(rooftune.WithSystem("Gold 6148"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The summary reports tuned peaks against the theoretical ones
	// (Eqs. 9-11 of the paper).
	fmt.Print(res.Summary())

	// And the roofline graph itself — Fig. 1 of the paper, for this
	// system, from measurements alone.
	fmt.Println(res.Roofline.RenderASCII(76, 20))
}
