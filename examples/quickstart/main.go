// Quickstart: build the empirical Roofline model of a paper system in a
// few lines. The simulated engine makes this deterministic and instant;
// swap rooftune.Simulated for rooftune.Native to profile your own machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rooftune"
)

func main() {
	// Autotune DGEMM (compute roof) and TRIAD (memory roofs) for the
	// Intel Xeon Gold 6148 node of the paper, with the paper's best
	// technique (confidence intervals + early termination) as the default.
	res, err := rooftune.Simulated("Gold 6148", nil)
	if err != nil {
		log.Fatal(err)
	}

	// The summary reports tuned peaks against the theoretical ones
	// (Eqs. 9-11 of the paper).
	fmt.Print(res.Summary())

	// And the roofline graph itself — Fig. 1 of the paper, for this
	// system, from measurements alone.
	fmt.Println(res.Roofline.RenderASCII(76, 20))
}
